package dist_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/record"
	"snet/internal/rtype"
)

// The cluster must satisfy the runtime's platform contract.
var _ core.Platform = (*dist.Cluster)(nil)

func TestNewClusterValidation(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCluster(%d, %d) did not panic", bad[0], bad[1])
				}
			}()
			dist.NewCluster(bad[0], bad[1])
		}()
	}
	c := dist.NewCluster(3, 2)
	if c.Nodes() != 3 || c.CPUsPerNode() != 2 {
		t.Fatalf("shape = %dx%d", c.Nodes(), c.CPUsPerNode())
	}
}

// TestExecSlotBounding floods every node with far more concurrent Exec calls
// than it has CPU slots and asserts the bound is never exceeded. Run under
// -race this also exercises the counter paths for data races.
func TestExecSlotBounding(t *testing.T) {
	const nodes, cpus, calls = 3, 2, 40
	c := dist.NewCluster(nodes, cpus)
	var inFlight [nodes]atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			node := i % nodes
			c.Exec(node, func() {
				if n := inFlight[node].Add(1); n > cpus {
					t.Errorf("node %d: %d concurrent execs, cap %d", node, n, cpus)
				}
				time.Sleep(time.Millisecond)
				inFlight[node].Add(-1)
			})
		}(i)
	}
	wg.Wait()
	s := c.Stats()
	var total int64
	for n, e := range s.Execs {
		total += e
		if s.Busy[n] <= 0 {
			t.Errorf("node %d: no busy time accumulated", n)
		}
	}
	if total != calls {
		t.Fatalf("total execs = %d, want %d", total, calls)
	}
}

// TestExecNodeNormalization checks that out-of-range node indices wrap
// modulo the cluster size (the mapping the dynamic token scheme relies on).
func TestExecNodeNormalization(t *testing.T) {
	c := dist.NewCluster(3, 1)
	c.Exec(7, func() {})  // 7 mod 3 = 1
	c.Exec(-1, func() {}) // -1 mod 3 = 2
	s := c.Stats()
	want := []int64{0, 1, 1}
	for n := range want {
		if s.Execs[n] != want[n] {
			t.Fatalf("execs = %v, want %v", s.Execs, want)
		}
	}
}

func TestTransferAccounting(t *testing.T) {
	c := dist.NewCluster(4, 1)
	r := record.Build().T("node", 3).F("payload", []byte("0123456789")).Rec()
	c.Transfer(0, 2, r)
	c.Transfer(2, 0, r)
	c.Transfer(1, 1, r) // same node: free
	c.Transfer(1, 5, r) // 5 wraps to node 1: same node, free
	s := c.Stats()
	if s.Transfers != 2 {
		t.Fatalf("transfers = %d, want 2", s.Transfers)
	}
	// Each hop used a distinct directed link, so both paid the first-use
	// price of a fresh negotiated label table.
	if want := int64(2 * dist.NewCodec().Size(r)); s.Bytes != want {
		t.Fatalf("bytes = %d, want %d", s.Bytes, want)
	}
}

// TestTransferNegotiatedShrink checks that repeated transfers over the same
// link are charged interned-symbol prices: after the first hop defines the
// labels, later hops ship only symbol references and cost strictly less.
func TestTransferNegotiatedShrink(t *testing.T) {
	c := dist.NewCluster(2, 1)
	r := record.Build().T("node", 3).F("payload", []byte("0123456789")).Rec()
	c.Transfer(0, 1, r)
	first := c.Stats().Bytes
	c.Transfer(0, 1, r)
	second := c.Stats().Bytes - first
	if second >= first {
		t.Fatalf("negotiated hop cost %d bytes, first hop %d: label table not shared", second, first)
	}
	// The steady-state price must match a codec that has already seen the
	// record once.
	codec := dist.NewCodec()
	codec.Account(r)
	if want := int64(codec.Size(r)); second != want {
		t.Fatalf("steady-state hop = %d bytes, want %d", second, want)
	}
}

func TestStatsSnapshotIsACopy(t *testing.T) {
	c := dist.NewCluster(2, 1)
	c.Exec(0, func() {})
	s := c.Stats()
	s.Execs[0] = 99
	s.Busy[0] = time.Hour
	if got := c.Stats().Execs[0]; got != 1 {
		t.Fatalf("snapshot mutation leaked into cluster: execs[0] = %d", got)
	}
}

func TestTransferCostModel(t *testing.T) {
	c := dist.NewCluster(2, 1)
	r := record.Build().F("payload", make([]byte, 1000)).Rec()

	// No cost configured: transfers do not sleep measurably.
	start := time.Now()
	c.Transfer(0, 1, r)
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("free transfer took %v", d)
	}

	// 20ms latency plus 1000 bytes at 100 KB/s ≈ 10ms: at least the
	// latency must be observable even on a noisy CI machine.
	c.SetTransferCost(20*time.Millisecond, 100e3)
	start = time.Now()
	c.Transfer(0, 1, r)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("costed transfer took only %v", d)
	}

	// Disabling restores free transfers.
	c.SetTransferCost(0, 0)
	start = time.Now()
	c.Transfer(0, 1, r)
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("disabled cost still delayed: %v", d)
	}
}

// TestColocatedPipelineDoesNotDeadlock regression-tests the slot/stream
// interaction: a box that fans one record out into many must not hold its
// node's only CPU slot while blocked on downstream backpressure, or a
// co-located consumer (waiting for that same slot) deadlocks the network.
// Unbuffered streams make the hazard deterministic.
func TestColocatedPipelineDoesNotDeadlock(t *testing.T) {
	c := dist.NewCluster(1, 1)
	fan := core.NewBox("fan",
		core.MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("i")}),
		func(bc *core.BoxCall) error {
			for i := 0; i < bc.Tag("n"); i++ {
				bc.Emit(record.New().SetTag("i", i))
			}
			return nil
		})
	sink := core.NewBox("sink",
		core.MustSig([]rtype.Label{rtype.T("i")}, []rtype.Label{rtype.T("i")}),
		func(bc *core.BoxCall) error {
			bc.Emit(record.New().SetTag("i", bc.Tag("i")))
			return nil
		})
	net := core.NewNetwork(core.Serial(fan, sink),
		core.Options{Platform: c, BufferSize: -1})
	done := make(chan int)
	go func() {
		outs, err := net.Run(record.New().SetTag("n", 100))
		if err != nil {
			t.Error(err)
		}
		done <- len(outs)
	}()
	select {
	case n := <-done:
		if n != 100 {
			t.Fatalf("outs = %d, want 100", n)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("co-located pipeline deadlocked on the CPU slot")
	}
}

// TestClusterUnderNetwork runs a real placed network on the cluster and
// checks the platform saw the work: the integration seam the facade tests
// exercise from above.
func TestClusterUnderNetwork(t *testing.T) {
	c := dist.NewCluster(3, 1)
	work := core.NewBox("work",
		core.MustSig([]rtype.Label{rtype.T("node")}, []rtype.Label{rtype.T("done")}),
		func(bc *core.BoxCall) error {
			bc.Emit(record.New().SetTag("done", bc.Node()))
			return nil
		})
	net := core.NewNetwork(core.SplitAt(work, "node"), core.Options{Platform: c})
	var ins []*record.Record
	for i := 0; i < 9; i++ {
		ins = append(ins, record.New().SetTag("node", i%3))
	}
	outs, err := net.Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 9 {
		t.Fatalf("outs = %d", len(outs))
	}
	s := c.Stats()
	for n, e := range s.Execs {
		if e != 3 {
			t.Fatalf("node %d execs = %d, want 3 (%v)", n, e, s.Execs)
		}
	}
	// Records placed on node 0 never leave it; the other 6 hop there and
	// back.
	if s.Transfers != 12 {
		t.Fatalf("transfers = %d, want 12", s.Transfers)
	}
}
