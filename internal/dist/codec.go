// The record wire codec: what a record costs to move between cluster nodes,
// and — for serializable field values — the bytes that would actually move.
//
// Distributed S-Net ships records between nodes, so the platform needs a
// defined wire representation to size transfers. Tags and binding tags are
// integers and always serialize exactly. Field values are opaque to the
// coordination layer; the codec serializes the common scalar kinds (nil,
// bool, integers, float64, string, []byte) exactly and sizes everything else
// with the mpi.ByteSizer conventions (ByteSize when declared, a fixed
// estimate otherwise), so the S-Net cluster and the MPI baseline charge
// identical byte counts for the same payloads.
//
// Invariant: for a record whose field values are all serializable,
// Size(r) == len(Marshal(r)).
package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"snet/internal/mpi"
	"snet/internal/record"
)

// codecVersion is the wire-format version byte leading every encoding.
const codecVersion = 1

// Field-value type codes on the wire. tExt carries a value encoded by a
// registered ValueCodec (codec2.go): a u16-length-prefixed encoding name
// followed by a u32-length-prefixed payload; only the stateful v2 codec
// can carry extension values, since decoding needs the link's ValueCodec.
const (
	tNil byte = iota
	tBool
	tInt
	tFloat
	tString
	tBytes
	tExt
)

// Record kinds on the wire.
const (
	kData    byte = 0
	kTrigger byte = 1
)

// Size returns the record's wire size in bytes: the exact encoding size for
// serializable content, with non-serializable field values sized by
// mpi.PayloadBytes. Transfer uses Size for traffic accounting.
func Size(r *record.Record) int {
	n := 8 // version, kind, three u16 label counts
	count := func(label string, _ int) { n += 2 + len(label) + 8 }
	r.VisitTags(count)
	r.VisitBTags(count)
	r.VisitFields(func(label string, v any) {
		n += 2 + len(label) + 1 + valueSize(v)
	})
	return n
}

// valueSize is the encoded payload size after the type-code byte.
func valueSize(v any) int {
	switch d := v.(type) {
	case nil:
		return 0
	case bool:
		return 1
	case int, int64, float64:
		return 8
	case string:
		return 4 + len(d)
	case []byte:
		return 4 + len(d)
	default:
		return mpi.PayloadBytes(v)
	}
}

// Marshal encodes a record for the wire. It fails when a field value is not
// one of the serializable kinds; such records can still be sized (Size) and
// transferred in-process, they just have no exact wire form.
func Marshal(r *record.Record) ([]byte, error) {
	tags, btags, fields := r.Tags(), r.BTags(), r.Fields()
	if len(tags) > math.MaxUint16 || len(btags) > math.MaxUint16 ||
		len(fields) > math.MaxUint16 {
		return nil, fmt.Errorf(
			"dist: record with %d fields, %d tags, %d btags exceeds the wire limit of %d labels per kind",
			len(fields), len(tags), len(btags), math.MaxUint16)
	}
	for _, ks := range [][]string{tags, btags, fields} {
		for _, k := range ks {
			if len(k) > math.MaxUint16 {
				return nil, fmt.Errorf(
					"dist: label %.32q… of %d bytes exceeds the wire limit of %d",
					k, len(k), math.MaxUint16)
			}
		}
	}
	buf := make([]byte, 0, Size(r))
	buf = append(buf, codecVersion, kData)
	if !r.IsData() {
		buf[1] = kTrigger
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(tags)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(btags)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(fields)))
	for _, k := range tags {
		v, _ := r.Tag(k) //lint:reason v1 wire format is name-keyed: labels travel as strings
		buf = appendLabel(buf, k)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	for _, k := range btags {
		v, _ := r.BTag(k) //lint:reason v1 wire format is name-keyed: labels travel as strings
		buf = appendLabel(buf, k)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	for _, k := range fields {
		v, _ := r.Field(k) //lint:reason v1 wire format is name-keyed: labels travel as strings
		buf = appendLabel(buf, k)
		var err error
		if buf, err = appendValue(buf, k, v); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendLabel(buf []byte, label string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(label)))
	return append(buf, label...)
}

func appendValue(buf []byte, label string, v any) ([]byte, error) {
	switch d := v.(type) {
	case nil:
		return append(buf, tNil), nil
	case bool:
		b := byte(0)
		if d {
			b = 1
		}
		return append(buf, tBool, b), nil
	case int:
		buf = append(buf, tInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(int64(d))), nil
	case int64:
		buf = append(buf, tInt)
		return binary.LittleEndian.AppendUint64(buf, uint64(d)), nil
	case float64:
		buf = append(buf, tFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(d)), nil
	case string:
		if len(d) > math.MaxUint32 {
			return nil, fmt.Errorf("dist: field %q string of %d bytes exceeds the wire limit", label, len(d))
		}
		buf = append(buf, tString)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d)))
		return append(buf, d...), nil
	case []byte:
		if len(d) > math.MaxUint32 {
			return nil, fmt.Errorf("dist: field %q payload of %d bytes exceeds the wire limit", label, len(d))
		}
		buf = append(buf, tBytes)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d)))
		return append(buf, d...), nil
	default:
		return nil, fmt.Errorf("dist: field %q value of type %T is not wire-serializable", label, v)
	}
}

// Unmarshal decodes a record encoded by Marshal. The wire format keeps one
// integer kind, so int and int64 field values both decode as int. Version 2
// buffers (Codec) are accepted as long as they are self-contained, i.e.
// every label carries its inline definition — true of the first record a
// fresh Codec marshals; later records of a negotiated stream need the
// receiving link's Codec.Unmarshal.
func Unmarshal(data []byte) (*record.Record, error) {
	d := &decoder{buf: data}
	version, err := d.byte()
	if err != nil {
		return nil, err
	}
	if version == codecVersion2 {
		return unmarshalV2(data, make(map[uint64]record.Sym), nil)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("dist: wire version %d, want %d", version, codecVersion)
	}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	var r *record.Record
	switch kind {
	case kData:
		r = record.New()
	case kTrigger:
		r = record.NewTrigger()
	default:
		return nil, fmt.Errorf("dist: unknown record kind %d", kind)
	}
	nTags, err := d.u16()
	if err != nil {
		return nil, err
	}
	nBTags, err := d.u16()
	if err != nil {
		return nil, err
	}
	nFields, err := d.u16()
	if err != nil {
		return nil, err
	}
	for i := 0; i < int(nTags); i++ {
		k, v, err := d.labeledInt()
		if err != nil {
			return nil, err
		}
		r.SetTag(k, v) //lint:reason v1 wire format is name-keyed: labels travel as strings
	}
	for i := 0; i < int(nBTags); i++ {
		k, v, err := d.labeledInt()
		if err != nil {
			return nil, err
		}
		r.SetBTag(k, v) //lint:reason v1 wire format is name-keyed: labels travel as strings
	}
	for i := 0; i < int(nFields); i++ {
		k, err := d.label()
		if err != nil {
			return nil, err
		}
		v, err := d.value(k, nil)
		if err != nil {
			return nil, err
		}
		r.SetField(k, v) //lint:reason v1 wire format is name-keyed: labels travel as strings
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("dist: %d trailing bytes after record", len(d.buf)-d.off)
	}
	return r, nil
}

// decoder walks an encoded record with bounds checking.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) take(n int) ([]byte, error) {
	if d.off+n > len(d.buf) {
		return nil, fmt.Errorf("dist: truncated record encoding at byte %d", d.off)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *decoder) byte() (byte, error) {
	b, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (d *decoder) u16() (uint16, error) {
	b, err := d.take(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (d *decoder) u32() (uint32, error) {
	b, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64() (uint64, error) {
	b, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) label() (string, error) {
	n, err := d.u16()
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (d *decoder) labeledInt() (string, int, error) {
	k, err := d.label()
	if err != nil {
		return "", 0, err
	}
	v, err := d.u64()
	if err != nil {
		return "", 0, err
	}
	return k, int(int64(v)), nil
}

func (d *decoder) value(label string, ext ValueCodec) (any, error) {
	code, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch code {
	case tNil:
		return nil, nil
	case tBool:
		b, err := d.byte()
		if err != nil {
			return nil, err
		}
		return b != 0, nil
	case tInt:
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		return int(int64(v)), nil
	case tFloat:
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		return math.Float64frombits(v), nil
	case tString:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		return string(b), nil
	case tBytes:
		n, err := d.u32()
		if err != nil {
			return nil, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return nil, err
		}
		return append([]byte(nil), b...), nil
	case tExt:
		nameLen, err := d.u16()
		if err != nil {
			return nil, err
		}
		name, err := d.take(int(nameLen))
		if err != nil {
			return nil, err
		}
		dataLen, err := d.u32()
		if err != nil {
			return nil, err
		}
		data, err := d.take(int(dataLen))
		if err != nil {
			return nil, err
		}
		if ext == nil {
			return nil, fmt.Errorf("dist: field %q carries extension encoding %q but the link has no ValueCodec",
				label, string(name))
		}
		v, err := ext.Decode(string(name), data)
		if err != nil {
			return nil, fmt.Errorf("dist: field %q extension decode (%q): %w", label, string(name), err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("dist: field %q has unknown wire type code %d", label, code)
	}
}
