// Tests for the hooks internal/wire layers on top of the in-process model:
// ExecOn (slot scheduling that reports the granted node), Codec.Reset
// (re-negotiation after connection loss), MarshalBatch/UnmarshalBatch (the
// real bytes behind AccountBatch's sizing), and the ValueCodec extension
// for non-scalar field values.
package dist

import (
	"encoding/binary"
	"fmt"
	"strings"
	"sync"
	"testing"

	"snet/internal/record"
)

func TestExecOnReportsHomeNode(t *testing.T) {
	c := NewCluster(3, 1)
	var granted int
	ok := c.ExecOn(2, nil, nil, false, func(got int) { granted = got })
	if !ok || granted != 2 {
		t.Fatalf("ExecOn = %v on node %d, want grant on home node 2", ok, granted)
	}
	s := c.Stats()
	if s.Execs[2] != 1 || s.Steals != 0 {
		t.Fatalf("stats = %+v, want one exec on node 2 and no steals", s)
	}
}

func TestExecOnStealsLikeExecStealable(t *testing.T) {
	c := NewCluster(2, 1)
	// Saturate node 0, then dispatch stealable work homed there: the
	// dispatch-time steal must claim node 1's idle slot, report it to fn,
	// and account the migrated input exactly like ExecStealable.
	block := make(chan struct{})
	started := make(chan struct{})
	go c.Exec(0, func() { close(started); <-block })
	<-started

	in := record.New()
	in.SetField("payload", "0123456789")
	var granted int
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.ExecOn(0, nil, in, true, func(got int) { granted = got })
	}()
	<-done
	close(block)

	if granted != 1 {
		t.Fatalf("stealable ExecOn granted node %d, want thief node 1", granted)
	}
	s := c.Stats()
	if s.Steals != 1 || s.Migrated != 1 {
		t.Fatalf("stats = %+v, want 1 steal and 1 migrated input", s)
	}
	if s.Bytes == 0 {
		t.Fatalf("migrated input accounted zero bytes")
	}
}

func TestExecOnCancelBeforeGrant(t *testing.T) {
	c := NewCluster(1, 1)
	block := make(chan struct{})
	started := make(chan struct{})
	go c.Exec(0, func() { close(started); <-block })
	<-started

	cancel := make(chan struct{})
	close(cancel)
	ran := false
	if ok := c.ExecOn(0, cancel, nil, false, func(int) { ran = true }); ok || ran {
		t.Fatalf("cancelled ExecOn: ok=%v ran=%v, want neither", ok, ran)
	}
	close(block)
}

func TestCodecResetRestartsNegotiation(t *testing.T) {
	enc, dec := NewCodec(), NewCodec()
	r := record.New()
	r.SetField("x", 1)
	r.SetTag("t", 2)

	first, err := enc.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Unmarshal(first); err != nil {
		t.Fatal(err)
	}
	second, err := enc.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) >= len(first) {
		t.Fatalf("negotiated re-send (%d bytes) not smaller than first send (%d bytes)", len(second), len(first))
	}
	if _, err := dec.Unmarshal(second); err != nil {
		t.Fatal(err)
	}

	// Simulate connection loss: a fresh decoder on the new connection
	// cannot resolve the encoder's bare symbol references...
	fresh := NewCodec()
	leak, err := enc.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Unmarshal(leak); err == nil {
		t.Fatalf("fresh decoder accepted a reference-only encoding from a negotiated link")
	}

	// ...until both sides Reset: the encoder re-defines every label inline
	// and the stream decodes from scratch.
	enc.Reset()
	fresh.Reset()
	again, err := enc.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first) {
		t.Fatalf("post-Reset encoding is %d bytes, want the fresh-link size %d", len(again), len(first))
	}
	got, err := fresh.Unmarshal(again)
	if err != nil {
		t.Fatalf("post-Reset decode: %v", err)
	}
	if v, ok := got.Tag("t"); !ok || v != 2 {
		t.Fatalf("post-Reset record lost tag t: %v %v", v, ok)
	}
}

func TestMarshalBatchMatchesAccountBatch(t *testing.T) {
	// The real bytes and the accounting must agree: two codecs in the same
	// negotiation state produce len(MarshalBatch) == AccountBatch for
	// scalar records, including the second batch where the label table is
	// already negotiated.
	mkBatch := func(n, base int) []*record.Record {
		var rs []*record.Record
		for i := 0; i < n; i++ {
			r := record.New()
			r.SetField("value", float64(base+i))
			r.SetField("name", fmt.Sprintf("rec-%d", base+i))
			r.SetTag("seq", base+i)
			rs = append(rs, r)
		}
		rs = append(rs, record.NewTrigger())
		return rs
	}
	acct, wire, dec := NewCodec(), NewCodec(), NewCodec()
	for round, base := range []int{0, 100} {
		rs := mkBatch(3, base)
		want := acct.AccountBatch(rs)
		data, err := wire.MarshalBatch(rs)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != want {
			t.Fatalf("round %d: MarshalBatch produced %d bytes, AccountBatch sized %d", round, len(data), want)
		}
		outs, err := dec.UnmarshalBatch(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(outs) != len(rs) {
			t.Fatalf("round %d: decoded %d records, want %d", round, len(outs), len(rs))
		}
		for i, o := range outs {
			if o.IsData() != rs[i].IsData() {
				t.Fatalf("round %d record %d: kind mismatch", round, i)
			}
			if !o.IsData() {
				continue
			}
			if v, ok := o.Tag("seq"); !ok || v != base+i {
				t.Fatalf("round %d record %d: seq = %v %v", round, i, v, ok)
			}
			if v, _ := o.Field("name"); v != fmt.Sprintf("rec-%d", base+i) {
				t.Fatalf("round %d record %d: name = %v", round, i, v)
			}
		}
	}
}

func TestUnmarshalRejectsBatchKind(t *testing.T) {
	enc := NewCodec()
	data, err := enc.MarshalBatch([]*record.Record{record.New()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCodec().Unmarshal(data); err == nil ||
		!strings.Contains(err.Error(), "UnmarshalBatch") {
		t.Fatalf("Unmarshal of a batch message: err = %v, want a hint at UnmarshalBatch", err)
	}
}

// testExt encodes testPayload values as "tp:" + 8-byte big-endian id.
type testPayload struct{ id uint64 }

type testExt struct{ mu sync.Mutex }

func (x *testExt) Handles(v any) bool { _, ok := v.(testPayload); return ok }
func (x *testExt) Encode(v any) (string, []byte, error) {
	p := v.(testPayload)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], p.id)
	return "tp", b[:], nil
}
func (x *testExt) Decode(name string, data []byte) (any, error) {
	if name != "tp" || len(data) != 8 {
		return nil, fmt.Errorf("bad tp encoding %q/%d", name, len(data))
	}
	return testPayload{id: binary.BigEndian.Uint64(data)}, nil
}

func TestValueCodecExtensionRoundTrip(t *testing.T) {
	enc, dec := NewCodec(), NewCodec()
	r := record.New()
	r.SetField("p", testPayload{id: 42})
	r.SetField("s", "scalar")

	if enc.Marshalable(r) {
		t.Fatalf("record with unregistered payload reported marshalable")
	}
	if _, err := enc.Marshal(r); err == nil {
		t.Fatalf("Marshal accepted an unregistered payload type")
	}

	ext := &testExt{}
	enc.SetValueCodec(ext)
	if !enc.Marshalable(r) {
		t.Fatalf("record with registered payload reported unmarshalable")
	}
	data, err := enc.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}

	// A peer without the extension must reject the buffer, not mis-decode.
	if _, err := dec.Unmarshal(data); err == nil {
		t.Fatalf("decoder without ValueCodec accepted an extension value")
	}

	dec2 := NewCodec()
	dec2.SetValueCodec(ext)
	got, err := dec2.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got.Field("p"); v != (testPayload{id: 42}) {
		t.Fatalf("extension field decoded as %#v", v)
	}
	if v, _ := got.Field("s"); v != "scalar" {
		t.Fatalf("scalar field decoded as %#v", v)
	}
}

func TestValueCodecExtensionInBatch(t *testing.T) {
	ext := &testExt{}
	enc, dec := NewCodec(), NewCodec()
	enc.SetValueCodec(ext)
	dec.SetValueCodec(ext)
	var rs []*record.Record
	for i := 0; i < 4; i++ {
		r := record.New()
		r.SetField("p", testPayload{id: uint64(i)})
		rs = append(rs, r)
	}
	data, err := enc.MarshalBatch(rs)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := dec.UnmarshalBatch(data)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if v, _ := o.Field("p"); v != (testPayload{id: uint64(i)}) {
			t.Fatalf("record %d decoded payload %#v", i, v)
		}
	}
}
