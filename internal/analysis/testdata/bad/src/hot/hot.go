//snet:hot
// Seeded-bad fixture: violates the symhot invariant in a hot package.
package hot

import "snet/internal/record"

func touch(r *record.Record) {
	r.SetField("x", 1) // string-keyed accessor in a hot package: symhot must flag this
}
