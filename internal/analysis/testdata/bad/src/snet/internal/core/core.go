// Seeded-bad fixture: violates the doneselect invariant.
package core

type entity struct {
	out chan int
}

func (e *entity) leak() {
	e.out <- 1 // bare blocking send: doneselect must flag this
}
