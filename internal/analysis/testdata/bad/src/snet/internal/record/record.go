// Fixture stand-in for snet/internal/record (see symhot).
package record

type Sym uint32

func Intern(name string) Sym { return 0 }

type Record struct{}

func (r *Record) SetField(name string, v any) {}

func (r *Record) SetFieldSym(s Sym, v any) {}
