// Seeded-bad fixture: violates the wallclock invariant in the stream
// package scope.
package stream

import "time"

func waitFlush() {
	time.Sleep(time.Millisecond) // direct sleep: wallclock must flag this
}
