// Seeded-bad fixture: violates the wallclock and codeclock invariants.
package wire

import (
	"net"
	"sync"
	"time"

	"snet/internal/dist"
)

type peer struct {
	wmu   sync.Mutex
	conn  net.Conn
	codec *dist.Codec
}

func (p *peer) stamp() time.Time {
	return time.Now() // direct wall-clock read: wallclock must flag this
}

func (p *peer) send(v any) {
	b, _ := p.codec.Marshal(v) // encode outside p.wmu: codeclock must flag this
	_, _ = p.conn.Write(b)     // write outside p.wmu: codeclock must flag this
}
