// Fixture stand-in for snet/internal/dist (see codeclock).
package dist

type Codec struct{}

func (c *Codec) Marshal(v any) ([]byte, error) { return nil, nil }
