// Package doneselect enforces the PR-3 lifecycle invariant on the core
// runtime: every blocking channel operation in snet/internal/core must be
// cancellable by the instance's done channel, or it strands a goroutine
// (and, transitively, a platform CPU slot) when the network is stopped.
//
// Concretely, in production code of snet/internal/core:
//
//   - a channel send or receive must be a case of a select that also has
//     a `<-...done` case (ident `done` or selector `.done`) or a
//     `default` clause (a non-blocking fast path cannot strand anything);
//   - a bare receive is allowed only from the done channel itself
//     (waiting for shutdown IS the invariant);
//   - `for range ch` loops over channels are blocking receives with no
//     escape and are always flagged.
//
// Deliberate escapes — a buffered channel provably sized to its senders —
// carry a `//lint:reason` comment. This is the mechanical form of the bug
// family PR 3 fixed by hand: entity goroutines blocked forever on sends
// into abandoned streams.
package doneselect

import (
	"go/ast"
	"go/token"
	"go/types"

	"snet/internal/analysis/framework"
)

// corePath is the package this analyzer scopes itself to.
const corePath = "snet/internal/core"

// Analyzer is the doneselect pass.
var Analyzer = &framework.Analyzer{
	Name: "doneselect",
	Doc: "channel operations in the core runtime must select on the instance done channel " +
		"(or be non-blocking via default), so Instance.Stop can always reclaim every goroutine",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Path != corePath {
		return nil
	}
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *framework.Pass, f *ast.File) {
	// First pass: map every comm operation to its select, and classify
	// each select as guarded (has a done case or a default) or not.
	commOf := make(map[ast.Node]*ast.SelectStmt)
	guarded := make(map[*ast.SelectStmt]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		ok = false
		for _, cl := range sel.Body.List {
			cc := cl.(*ast.CommClause)
			if cc.Comm == nil { // default clause: non-blocking
				ok = true
				continue
			}
			for _, op := range commNodes(cc.Comm) {
				commOf[op] = sel
				if u, isRecv := op.(*ast.UnaryExpr); isRecv && isDoneChan(u.X) {
					ok = true
				}
			}
		}
		guarded[sel] = ok
		return true
	})
	unguarded := func(sel *ast.SelectStmt, op ast.Node, kind string) {
		if guarded[sel] || pass.Allowed(op) || pass.Allowed(sel) {
			return
		}
		pass.Reportf(op.Pos(), "channel %s in a select with neither a done case nor a default: "+
			"a stopped instance cannot reclaim this goroutine", kind)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if sel, inSelect := commOf[n]; inSelect {
				unguarded(sel, n, "send")
			} else if !pass.Allowed(n) {
				pass.Reportf(n.Pos(), "blocking channel send outside a select with a done case: "+
					"a stopped instance cannot reclaim this goroutine")
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW {
				return true
			}
			if sel, inSelect := commOf[n]; inSelect {
				unguarded(sel, n, "receive")
				return true
			}
			if isDoneChan(n.X) {
				return true // waiting on done itself is the point
			}
			if !pass.Allowed(n) {
				pass.Reportf(n.Pos(), "blocking channel receive outside a select with a done case: "+
					"a stopped instance cannot reclaim this goroutine")
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !pass.Allowed(n) {
					pass.Reportf(n.Pos(), "range over a channel blocks with no done escape: "+
						"use a select with the instance done case instead")
				}
			}
		}
		return true
	})
}

// commNodes extracts the channel-operation nodes of a select comm
// statement: the SendStmt itself, or the receive UnaryExprs inside an
// expression or assignment comm.
func commNodes(comm ast.Stmt) []ast.Node {
	switch s := comm.(type) {
	case *ast.SendStmt:
		return []ast.Node{s}
	case *ast.ExprStmt:
		if u, ok := framework.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return []ast.Node{u}
		}
	case *ast.AssignStmt:
		var out []ast.Node
		for _, rhs := range s.Rhs {
			if u, ok := framework.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				out = append(out, u)
			}
		}
		return out
	}
	return nil
}

// isDoneChan reports whether expr denotes the instance done channel by
// the runtime's naming convention: the identifier `done`, any selector
// field `.done`, or a call to a method named `Done`.
func isDoneChan(e ast.Expr) bool {
	switch e := framework.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "done"
	case *ast.SelectorExpr:
		return e.Sel.Name == "done"
	case *ast.CallExpr:
		if sel, ok := framework.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	}
	return false
}
