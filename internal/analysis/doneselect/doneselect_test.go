package doneselect_test

import (
	"testing"

	"snet/internal/analysis/analysistest"
	"snet/internal/analysis/doneselect"
	"snet/internal/analysis/framework"
)

func TestDoneselect(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*framework.Analyzer{doneselect.Analyzer},
		"snet/internal/core")
}
