// Fixture impersonating snet/internal/core for the doneselect analyzer:
// every blocking channel op must be cancellable by the instance done
// channel.
package core

type env struct {
	done chan struct{}
}

type entity struct {
	env *env
	in  chan int
	out chan int
}

func (e *entity) goodLoop() {
	for {
		select {
		case v := <-e.in:
			select {
			case e.out <- v:
			case <-e.env.done:
				return
			}
		case <-e.env.done:
			return
		}
	}
}

func (e *entity) goodNonBlocking() {
	select {
	case e.out <- 1:
	default:
	}
}

func (e *entity) goodWaitShutdown() {
	<-e.env.done
}

func (e *entity) badSend() {
	e.out <- 1 // want "blocking channel send outside a select with a done case"
}

func (e *entity) badRecv() {
	_ = <-e.in // want "blocking channel receive outside a select with a done case"
}

func (e *entity) badSelect() {
	select {
	case e.out <- 1: // want "channel send in a select with neither a done case nor a default"
	case v := <-e.in: // want "channel receive in a select with neither a done case nor a default"
		_ = v
	}
}

func (e *entity) badRange() {
	for v := range e.in { // want "range over a channel blocks with no done escape"
		_ = v
	}
}

//lint:reason the buffer is sized to the single producer and can never fill
func (e *entity) allowlistedFunc() {
	e.out <- 2
}

func (e *entity) allowlistedLine() {
	e.out <- 3 //lint:reason drained by the caller before Stop is observable
}

func (e *entity) allowlistedSelect() {
	//lint:reason both channels are buffered and owned by this goroutine
	select {
	case e.out <- 1:
	case v := <-e.in:
		_ = v
	}
}
