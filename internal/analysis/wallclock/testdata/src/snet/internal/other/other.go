// Fixture outside the wallclock analyzer's scope: direct time use is
// fine here and must produce no diagnostics.
package other

import "time"

func fine() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
