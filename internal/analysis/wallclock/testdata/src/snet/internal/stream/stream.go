// Fixture impersonating snet/internal/stream for the wallclock analyzer.
package stream

import "time"

var now = time.Now //lint:reason default binding of the flush-latency clock seam

func pendingFor(since time.Time) time.Duration {
	return now().Sub(since)
}

func bad(since time.Time) time.Duration {
	return time.Since(since) // want "direct time.Since"
}
