// Fixture impersonating snet/internal/wire for the wallclock analyzer:
// no direct wall-clock reads or timer construction outside the clock
// seam.
package wire

import "time"

// Clock is the seam; its default binding is the one sanctioned
// wall-clock read in the package.
type Clock struct {
	NowFn func() time.Time
}

func (c Clock) Now() time.Time {
	if c.NowFn != nil {
		return c.NowFn()
	}
	return time.Now() //lint:reason default real-time binding of the clock seam
}

func bad() {
	_ = time.Now()                  // want "direct time.Now"
	time.Sleep(time.Millisecond)    // want "direct time.Sleep"
	_ = time.Since(time.Time{})     // want "direct time.Since"
	t := time.NewTimer(time.Second) // want "direct time.NewTimer"
	_ = t
	k := time.NewTicker(time.Second) // want "direct time.NewTicker"
	_ = k
}

func badValueRef() {
	now := time.Now // want "direct time.Now"
	_ = now
}

func methodsAreFine(a, b time.Time) bool {
	return a.After(b) // time.Time.After is a method, not a wall-clock read
}

func allowlistedDeadline() (time.Time, time.Time) {
	a := time.Now() //lint:reason conn deadlines are compared against real time by the kernel
	//lint:reason conn deadlines are compared against real time by the kernel
	b := time.Now()
	return a, b
}
