package wallclock_test

import (
	"testing"

	"snet/internal/analysis/analysistest"
	"snet/internal/analysis/framework"
	"snet/internal/analysis/wallclock"
)

func TestWallclock(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*framework.Analyzer{wallclock.Analyzer},
		"snet/internal/wire", "snet/internal/stream", "snet/internal/other")
}
