// Package wallclock enforces the PR-7 testability invariant on the
// transport and durability layers: production code in snet/internal/wire,
// snet/internal/stream, and snet/internal/journal must not read the wall
// clock or create timers directly — all time flows through the injected
// clock seams (wire.Clock, the stream package's `now` hook,
// journal.Clock), which is what lets the fault detectors (heartbeat
// sweep, liveness timeout, call deadlines, quarantine cool-down) and the
// journal's batched-fsync interval be driven by synthetic time in
// deterministic tests instead of by sleeping.
//
// Banned in those packages: time.Now, time.Sleep, time.Since, time.Until,
// time.After, time.AfterFunc, time.NewTimer, time.NewTicker, time.Tick —
// whether called or referenced as a value. The deliberate exceptions are
// exactly two kinds, each carrying a `//lint:reason`: the default
// real-time bindings inside the clock seams themselves, and net.Conn
// deadline arithmetic (the kernel compares deadlines against real time,
// so a synthetic cluster clock must not shift them).
package wallclock

import (
	"go/ast"
	"go/types"

	"snet/internal/analysis/framework"
)

// packages is the analyzer's scope: transport production code whose fault
// detectors must be drivable by synthetic time.
var packages = map[string]bool{
	"snet/internal/wire":    true,
	"snet/internal/stream":  true,
	"snet/internal/journal": true,
}

// banned is the set of time-package functions that read the wall clock or
// bind a wait to it.
var banned = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
}

// Analyzer is the wallclock pass.
var Analyzer = &framework.Analyzer{
	Name: "wallclock",
	Doc: "transport code must route all time through the injected clock seams " +
		"(wire.Clock, stream's now hook) so fault detectors stay deterministically testable",
	Run: run,
}

func run(pass *framework.Pass) error {
	if !packages[pass.Path] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel]
			if !ok {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !banned[fn.Name()] {
				return true
			}
			// Methods share names with the banned package functions
			// (time.Time.After, time.Time.Since via embedding, ...): only
			// package-level functions read the wall clock.
			if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
				return true
			}
			if pass.Allowed(sel) {
				return true
			}
			pass.Reportf(sel.Pos(), "direct time.%s in %s: route through the injected clock seam "+
				"(wire.Clock / stream's now hook) so fault detectors stay deterministically testable",
				fn.Name(), pass.Path)
			return true
		})
	}
	return nil
}
