// Package analysis is the registry of the repository's invariant
// checkers. Each analyzer encodes one hand-kept invariant from the PR
// history — done-channel cancellability (PR 3), injected clocks (PR 7),
// codec writes under the link mutex (PR 6), interned-Sym hot paths
// (PR 2) — as a mechanical check. cmd/snetlint and the self-check test
// both consume the suite through All, so the CLI and CI can never drift
// apart on which invariants are enforced. docs/invariants.md is the
// human-readable catalogue.
package analysis

import (
	"snet/internal/analysis/codeclock"
	"snet/internal/analysis/doneselect"
	"snet/internal/analysis/framework"
	"snet/internal/analysis/symhot"
	"snet/internal/analysis/wallclock"
)

// All returns the full analyzer suite in stable order.
func All() []*framework.Analyzer {
	return []*framework.Analyzer{
		codeclock.Analyzer,
		doneselect.Analyzer,
		symhot.Analyzer,
		wallclock.Analyzer,
	}
}
