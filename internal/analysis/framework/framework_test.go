package framework_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"snet/internal/analysis/framework"
)

// writeOverlay materializes a map of import path -> file content as an
// overlay root in a temp dir and returns the root.
func writeOverlay(t *testing.T, files map[string]string) string {
	t.Helper()
	root := filepath.Join(t.TempDir(), "src")
	for path, content := range files {
		dir := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// A bare //lint:reason silences nothing and is itself a diagnostic: the
// allowlist contract demands a written justification.
func TestBareReasonReported(t *testing.T) {
	root := writeOverlay(t, map[string]string{
		"fixture": "package fixture\n\nfunc f() int {\n\treturn 1 //lint:reason\n}\n",
	})
	ld := &framework.Loader{Overlay: root}
	diags, err := framework.RunAnalyzers(ld, []string{"fixture"}, nil)
	if err != nil {
		t.Fatalf("RunAnalyzers: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "lintreason" || !strings.Contains(diags[0].Message, "without a reason") {
		t.Errorf("unexpected diagnostic: %v", diags[0])
	}
}

// A load failure (package with a type error) must surface as an error,
// not as an empty diagnostic list that CI would read as a clean pass.
func TestTypeErrorSurfacesAsError(t *testing.T) {
	root := writeOverlay(t, map[string]string{
		"broken": "package broken\n\nfunc f() int { return undefined }\n",
	})
	ld := &framework.Loader{Overlay: root}
	if _, err := framework.RunAnalyzers(ld, []string{"broken"}, nil); err == nil {
		t.Fatal("expected a type-check error, got nil")
	}
}
