// Package loading for the analysis driver: file discovery via `go list`
// (the one tool every build environment already has), type checking from
// source via go/types. The loader resolves the full dependency closure —
// standard library included — by parsing and checking each package's
// sources in dependency order, so it needs neither export data nor a
// populated module cache.
//
// An overlay root (analysistest fixtures, the seeded-bad CI probe) maps
// import paths onto plain directories: Overlay/<import path>/ takes
// priority over `go list` resolution, which is how fixture packages can
// impersonate the runtime packages the analyzers scope themselves to
// (e.g. a ten-line stand-in for snet/internal/dist) without touching the
// real tree.
package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages and their dependency closures, memoizing
// type-checked results so shared dependencies (fmt, time, net) are
// checked once per Loader no matter how many roots need them.
type Loader struct {
	// Dir is the working directory for `go list` (the module root, or any
	// directory inside the module). Empty means the current directory.
	Dir string
	// Overlay, when non-empty, is a directory whose <import path>/
	// subdirectories provide package sources that take priority over
	// `go list` resolution.
	Overlay string

	fset     *token.FileSet
	listed   map[string]*listPkg
	pkgs     map[string]*Package
	roots    map[string]bool // packages that get full type Info
	checking map[string]bool // cycle guard for overlay graphs
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load resolves patterns — `go list` package patterns (./..., import
// paths) and overlay import paths — and returns the matched packages,
// type-checked with full syntax and type information.
func (ld *Loader) Load(patterns ...string) ([]*Package, error) {
	if ld.fset == nil {
		ld.fset = token.NewFileSet()
		ld.listed = make(map[string]*listPkg)
		ld.pkgs = make(map[string]*Package)
		ld.roots = make(map[string]bool)
		ld.checking = make(map[string]bool)
	}
	var overlayRoots, listPats []string
	for _, p := range patterns {
		if ld.overlayDir(p) != "" {
			overlayRoots = append(overlayRoots, p)
		} else {
			listPats = append(listPats, p)
		}
	}
	var rootPaths []string
	if len(listPats) > 0 {
		out, err := ld.goList(nil, listPats)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Fields(string(out)) {
			rootPaths = append(rootPaths, line)
		}
	}
	// The external (non-overlay) packages the overlay roots pull in.
	external := make(map[string]bool)
	seen := make(map[string]bool)
	for _, p := range overlayRoots {
		if err := ld.scanOverlayImports(p, seen, external); err != nil {
			return nil, err
		}
	}
	need := append([]string{}, rootPaths...)
	for p := range external {
		need = append(need, p)
	}
	sort.Strings(need)
	if len(need) > 0 {
		if err := ld.listDeps(need); err != nil {
			return nil, err
		}
	}
	for _, p := range rootPaths {
		ld.roots[p] = true
	}
	for _, p := range overlayRoots {
		ld.roots[p] = true
	}
	var out []*Package
	for _, p := range append(rootPaths, overlayRoots...) {
		pkg, err := ld.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// overlayDir returns the overlay directory providing import path p, or "".
func (ld *Loader) overlayDir(p string) string {
	if ld.Overlay == "" || p == "" || strings.HasPrefix(p, ".") || strings.HasPrefix(p, "/") {
		return ""
	}
	dir := filepath.Join(ld.Overlay, filepath.FromSlash(p))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		return dir
	}
	return ""
}

// scanOverlayImports walks the overlay package graph from path, recording
// every import that must come from `go list` instead.
func (ld *Loader) scanOverlayImports(path string, seen, external map[string]bool) error {
	if seen[path] {
		return nil
	}
	seen[path] = true
	dir := ld.overlayDir(path)
	files, err := overlayFiles(dir)
	if err != nil {
		return err
	}
	for _, fname := range files {
		f, err := parser.ParseFile(token.NewFileSet(), fname, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil || p == "unsafe" || p == "C" {
				continue
			}
			if ld.overlayDir(p) != "" {
				if err := ld.scanOverlayImports(p, seen, external); err != nil {
					return err
				}
			} else {
				external[p] = true
			}
		}
	}
	return nil
}

// overlayFiles lists the non-test Go sources of an overlay directory.
func overlayFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("overlay package directory %s has no Go files", dir)
	}
	sort.Strings(out)
	return out, nil
}

// goList runs `go list` with the given extra flags and arguments. CGO is
// disabled so every listed package has a pure-Go file set the source
// type-checker can fully resolve.
func (ld *Loader) goList(flags, args []string) ([]byte, error) {
	cmdArgs := append([]string{"list"}, flags...)
	cmdArgs = append(cmdArgs, "--")
	cmdArgs = append(cmdArgs, args...)
	cmd := exec.Command("go", cmdArgs...)
	cmd.Dir = ld.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// listDeps populates ld.listed with the full dependency closure of paths.
func (ld *Loader) listDeps(paths []string) error {
	out, err := ld.goList([]string{"-deps", "-json"}, paths)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return fmt.Errorf("decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		ld.listed[lp.ImportPath] = &lp
	}
	return nil
}

// check type-checks one package (memoized), recursively checking its
// dependencies first via the importer below.
func (ld *Loader) check(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.checking[path] {
		return nil, fmt.Errorf("import cycle through %s (overlay packages must be acyclic)", path)
	}
	ld.checking[path] = true
	defer delete(ld.checking, path)
	if path == "unsafe" {
		pkg := &Package{Path: path, Fset: ld.fset, Types: types.Unsafe}
		ld.pkgs[path] = pkg
		return pkg, nil
	}
	var dir string
	var fileNames []string
	var importMap map[string]string
	if od := ld.overlayDir(path); od != "" {
		dir = od
		var err error
		fileNames, err = overlayFiles(od)
		if err != nil {
			return nil, err
		}
	} else {
		lp := ld.listed[path]
		if lp == nil {
			return nil, fmt.Errorf("package %s is not in the loaded dependency closure", path)
		}
		dir = lp.Dir
		importMap = lp.ImportMap
		for _, f := range lp.GoFiles {
			fileNames = append(fileNames, filepath.Join(lp.Dir, f))
		}
	}
	var files []*ast.File
	for _, fname := range fileNames {
		f, err := parser.ParseFile(ld.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: ld.fset, Files: files}
	var firstErr error
	conf := types.Config{
		Importer:    importerFunc(func(p string) (*types.Package, error) { return ld.importFor(p, importMap) }),
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	var info *types.Info
	if ld.roots[path] {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, firstErr)
	}
	pkg.Types = tpkg
	pkg.Info = info
	ld.pkgs[path] = pkg
	return pkg, nil
}

// importFor resolves an import seen inside a package whose `go list`
// ImportMap is m (vendored std imports like golang.org/x/net resolve
// through it).
func (ld *Loader) importFor(path string, m map[string]string) (*types.Package, error) {
	if mapped, ok := m[path]; ok {
		path = mapped
	}
	pkg, err := ld.check(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
