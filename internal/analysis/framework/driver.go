// The driver: load packages, run every analyzer over each, collect and
// order diagnostics. This is the multichecker core shared by
// cmd/snetlint, the analysistest harness, and the self-check tests.
package framework

import (
	"sort"
)

// RunAnalyzers loads the packages matching patterns through ld and runs
// each analyzer over each loaded package. Analyzers scope themselves (a
// pass over a package outside an analyzer's remit returns without
// reporting), so the driver is policy-free. Diagnostics come back sorted
// by position; a non-nil error means loading or an analyzer itself
// failed, not that diagnostics were found.
func RunAnalyzers(ld *Loader, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := ld.Load(patterns...)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, pkg := range pkgs {
		checkReasons(pkg, report)
		for _, a := range analyzers {
			if err := a.Run(newPass(a, pkg, report)); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
