// Package framework is the minimal analysis driver behind cmd/snetlint: a
// deliberately small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis surface this repository's invariant
// checkers need — Analyzer, Pass, Reportf, and a `//lint:reason`
// allowlist — built on nothing but the standard library's go/ast and
// go/types.
//
// Why not golang.org/x/tools itself? The repo carries zero external
// dependencies (go.mod lists none, and the build environments it targets
// cannot assume a populated module cache), and the four invariants the
// suite enforces need only a file-at-a-time syntactic walk plus type
// information — no SSA, no facts, no cross-package analysis. Re-creating
// the thin slice we use keeps the lint gate hermetic: `go build` is the
// only prerequisite. The API shapes mirror x/tools on purpose, so if the
// dependency ever becomes available the analyzers port mechanically.
//
// # The allowlist contract
//
// A diagnostic site that is deliberate — a default real-time binding of a
// clock seam, a handshake write on a connection no other goroutine can
// see yet — is silenced with a `//lint:reason <why>` comment on the same
// line, on the line directly above, or on the enclosing function's
// declaration (its doc comment works: the comment ends on the line above
// the declaration). The reason text is mandatory: a bare `//lint:reason`
// silences nothing and is itself reported, so every escape from an
// invariant carries a written justification next to the code it excuses.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker: a name (used in diagnostics and for
// CLI selection), a one-paragraph contract, and a Run function invoked
// once per analyzed package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one (analyzer, package) unit of work, mirroring
// analysis.Pass: parsed syntax, type information, and a Report sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File // parsed with comments
	Path     string      // import path of the package under analysis
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)

	// reasons maps filename -> line -> reason text for every
	// `//lint:reason` comment in the package (empty string = missing
	// reason). allowedFuncs holds the body extent of every function whose
	// declaration is allowlisted, sorted by start position.
	reasons      map[string]map[int]string
	allowedFuncs []posRange
}

// Diagnostic is one finding, already positioned.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

type posRange struct{ lo, hi token.Pos }

func (r posRange) contains(p token.Pos) bool { return r.lo <= p && p <= r.hi }

// Reportf records a diagnostic at pos. Allowlisting is the analyzer's
// decision (call Allowed first): reporting is unconditional so an
// analyzer can also report misuse of the allowlist itself.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether node n is covered by a `//lint:reason` comment
// with a non-empty reason: on n's own line, on the line directly above
// it, or on the declaration of a function whose body contains n.
func (p *Pass) Allowed(n ast.Node) bool {
	pos := p.Fset.Position(n.Pos())
	if lines := p.reasons[pos.Filename]; lines != nil {
		if r, ok := lines[pos.Line]; ok && r != "" {
			return true
		}
		if r, ok := lines[pos.Line-1]; ok && r != "" {
			return true
		}
	}
	for _, r := range p.allowedFuncs {
		if r.contains(n.Pos()) {
			return true
		}
	}
	return false
}

// reasonPrefix introduces an allowlist comment. The text after the marker
// is the justification; it must be non-empty to take effect.
const reasonPrefix = "//lint:reason"

// newPass builds a Pass for one package, pre-indexing its allowlist
// comments and allowlisted function bodies.
func newPass(a *Analyzer, pkg *Package, report func(Diagnostic)) *Pass {
	p := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Path:     pkg.Path,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		report:   report,
		reasons:  make(map[string]map[int]string),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, reasonPrefix) {
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(c.Text, reasonPrefix))
				cp := pkg.Fset.Position(c.Pos())
				if p.reasons[cp.Filename] == nil {
					p.reasons[cp.Filename] = make(map[int]string)
				}
				p.reasons[cp.Filename][cp.Line] = reason
			}
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			dp := pkg.Fset.Position(fd.Pos())
			lines := p.reasons[dp.Filename]
			if lines == nil {
				continue
			}
			if r, ok := lines[dp.Line]; ok && r != "" {
				p.allowedFuncs = append(p.allowedFuncs, posRange{fd.Body.Pos(), fd.Body.End()})
				continue
			}
			if r, ok := lines[dp.Line-1]; ok && r != "" {
				p.allowedFuncs = append(p.allowedFuncs, posRange{fd.Body.Pos(), fd.Body.End()})
			}
		}
	}
	sort.Slice(p.allowedFuncs, func(i, j int) bool { return p.allowedFuncs[i].lo < p.allowedFuncs[j].lo })
	return p
}

// checkReasons reports every bare `//lint:reason` (no justification text)
// in the package: an allowlist entry without a written reason is a
// violation of the allowlist contract itself.
func checkReasons(pkg *Package, report func(Diagnostic)) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, reasonPrefix) {
					continue
				}
				if strings.TrimSpace(strings.TrimPrefix(c.Text, reasonPrefix)) == "" {
					report(Diagnostic{
						Pos:      pkg.Fset.Position(c.Pos()),
						Analyzer: "lintreason",
						Message:  "lint:reason without a reason: write why this site is exempt",
					})
				}
			}
		}
	}
}

// Unparen strips parentheses from an expression.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// NamedRecv resolves the (possibly pointer) receiver type of a selector's
// base expression to (package path, type name) when it is a named type,
// using the pass's type information. ok is false for unresolvable or
// unnamed types.
func (p *Pass) NamedRecv(sel *ast.SelectorExpr) (pkgPath, name string, ok bool) {
	tv, found := p.Info.Types[sel.X]
	if !found || tv.Type == nil {
		return "", "", false
	}
	t := types.Unalias(tv.Type)
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = types.Unalias(ptr.Elem())
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", "", false
	}
	return obj.Pkg().Path(), obj.Name(), true
}
