// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against `// want "regex"` expectation comments, the
// same contract as golang.org/x/tools/go/analysis/analysistest: every
// diagnostic must be wanted on its exact file and line, and every want
// must be matched by a diagnostic. Fixtures live under a testdata/src
// overlay root, where directory structure doubles as import path — which
// lets a ten-line stand-in impersonate snet/internal/dist for the
// analyzers that scope themselves by package path.
package analysistest

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"snet/internal/analysis/framework"
)

// wantRE matches the quoted patterns of a `// want "p1" "p2"` comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one unconsumed `// want` pattern.
type expectation struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

// Run loads the fixture packages at the given import paths from
// testdata/src, runs the analyzers over them, and reports any mismatch
// between diagnostics and `// want` comments as test errors.
func Run(t *testing.T, testdata string, analyzers []*framework.Analyzer, paths ...string) {
	t.Helper()
	ld := &framework.Loader{Overlay: filepath.Join(testdata, "src")}
	diags, err := framework.RunAnalyzers(ld, paths, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	wants := collectWants(t, filepath.Join(testdata, "src"), paths)
	for _, d := range diags {
		key := fileLine{filepath.Clean(d.Pos.Filename), d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.consumed {
				t.Errorf("%s:%d: no diagnostic matching want %s", key.file, key.line, w.raw)
			}
		}
	}
}

type fileLine struct {
	file string
	line int
}

// collectWants parses each fixture package's sources and indexes its
// `// want` comments by file and line.
func collectWants(t *testing.T, srcRoot string, paths []string) map[fileLine][]*expectation {
	t.Helper()
	wants := make(map[fileLine][]*expectation)
	fset := token.NewFileSet()
	for _, p := range paths {
		dir := filepath.Join(srcRoot, filepath.FromSlash(p))
		matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil || len(matches) == 0 {
			t.Fatalf("no fixture sources for %s under %s", p, srcRoot)
		}
		for _, fname := range matches {
			f, err := parser.ParseFile(fset, fname, nil, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing fixture %s: %v", fname, err)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					const marker = "// want "
					idx := strings.Index(c.Text, marker)
					if idx < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fileLine{filepath.Clean(pos.Filename), pos.Line}
					for _, q := range wantRE.FindAllString(c.Text[idx:], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: want pattern %q: %v", pos, pat, err)
						}
						wants[key] = append(wants[key], &expectation{re: re, raw: q})
					}
				}
			}
		}
	}
	return wants
}
