// A package without the hot marker: string-keyed accessors are fine
// here and must produce no diagnostics.
package cold

import "snet/internal/record"

func touch(r *record.Record) {
	r.SetField("x", 1)
	_ = r.HasField("x")
}
