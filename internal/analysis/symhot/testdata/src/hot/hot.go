//snet:hot
package hot

import "snet/internal/record"

var xSym = record.Intern("x")

func touch(r *record.Record) {
	r.SetField("x", 1) // want "string-keyed record.Record.SetField"
	r.SetFieldSym(xSym, 1)
	if v, ok := r.Tag("t"); ok { // want "string-keyed record.Record.Tag"
		_ = v
	}
	if v, ok := r.TagSym(xSym); ok {
		_ = v
	}
	r.DeleteTag("debug") //lint:reason cold error path, runs once per failed job
}
