// Fixture stand-in for snet/internal/record exposing the string- and
// Sym-keyed accessor pairs the symhot analyzer pattern-matches.
package record

type Sym uint32

func Intern(name string) Sym { return 0 }

type Record struct{}

func (r *Record) SetField(name string, v any) {}

func (r *Record) SetFieldSym(s Sym, v any) {}

func (r *Record) SetTag(name string, v int) {}

func (r *Record) SetTagSym(s Sym, v int) {}

func (r *Record) Tag(name string) (int, bool) { return 0, false }

func (r *Record) TagSym(s Sym) (int, bool) { return 0, false }

func (r *Record) HasField(name string) bool { return false }

func (r *Record) HasFieldSym(s Sym) bool { return false }

func (r *Record) DeleteTag(name string) {}

func (r *Record) DeleteTagSym(s Sym) {}
