package symhot_test

import (
	"testing"

	"snet/internal/analysis/analysistest"
	"snet/internal/analysis/framework"
	"snet/internal/analysis/symhot"
)

func TestSymhot(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*framework.Analyzer{symhot.Analyzer},
		"hot", "cold")
}
