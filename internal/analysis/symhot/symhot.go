// Package symhot enforces the PR-2 allocation invariant on hot packages:
// record labels are interned process-wide (record.Sym), and the runtime's
// hot paths were made allocation-free by keying every record access on
// symbols instead of strings. A string-keyed accessor on a hot path
// quietly reintroduces per-record work — the binary-search-by-name walk,
// and for dynamic label names an interning map hit — that the BENCH
// trajectories assume gone.
//
// A package opts into enforcement with a `//snet:hot` marker comment in
// any of its files (by convention next to the package clause). In a hot
// package, calls to the string-keyed record.Record accessors (SetField,
// Field, Tag, MustTag, HasField, DeleteBTag, ...) are flagged, steering
// the code to the Sym-keyed forms (SetFieldSym, FieldSym, ...) with the
// label interned once at construction time. Deliberately string-keyed
// sites — a cold error path, a compatibility codec that ships names on
// the wire anyway — carry a `//lint:reason`.
package symhot

import (
	"go/ast"
	"strings"

	"snet/internal/analysis/framework"
)

// hotMarker is the package-level opt-in comment.
const hotMarker = "//snet:hot"

// recordPath is the package whose accessor surface the analyzer guards.
const recordPath = "snet/internal/record"

// stringKeyed maps each string-keyed accessor to its Sym-keyed
// replacement.
var stringKeyed = map[string]string{
	"SetField":    "SetFieldSym",
	"SetTag":      "SetTagSym",
	"SetBTag":     "SetBTagSym",
	"Field":       "FieldSym",
	"Tag":         "TagSym",
	"BTag":        "BTagSym",
	"MustField":   "FieldSym",
	"MustTag":     "TagSym",
	"HasField":    "HasFieldSym",
	"HasTag":      "HasTagSym",
	"HasBTag":     "HasBTagSym",
	"DeleteField": "DeleteFieldSym",
	"DeleteTag":   "DeleteTagSym",
	"DeleteBTag":  "DeleteBTagSym",
}

// Analyzer is the symhot pass.
var Analyzer = &framework.Analyzer{
	Name: "symhot",
	Doc: "packages marked //snet:hot must use the interned-Sym record accessors; " +
		"string-keyed lookups reintroduce per-record costs the zero-alloc benchmarks assume gone",
	Run: run,
}

func run(pass *framework.Pass) error {
	hot := false
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(c.Text, hotMarker) {
					hot = true
				}
			}
		}
	}
	if !hot {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := framework.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			symForm, ok := stringKeyed[sel.Sel.Name]
			if !ok {
				return true
			}
			pkgPath, typeName, ok := pass.NamedRecv(sel)
			if !ok || typeName != "Record" || pkgPath != recordPath {
				return true
			}
			if pass.Allowed(call) {
				return true
			}
			pass.Reportf(call.Pos(), "string-keyed record.Record.%s in a //snet:hot package: "+
				"intern the label once and use %s", sel.Sel.Name, symForm)
			return true
		})
	}
	return nil
}
