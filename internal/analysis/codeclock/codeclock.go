// Package codeclock enforces the PR-6 codec-ordering invariant on the
// wire transport: a link's dist.Codec negotiates its label table by
// emission order, so every encode (Codec.Marshal / Codec.MarshalBatch)
// and every raw connection write in snet/internal/wire must happen under
// the owning link's write mutex — otherwise two goroutines can interleave
// "negotiate label, write frame" sequences and desynchronize the peer's
// label table, corrupting every record that follows.
//
// The check is the codebase's own locking convention, made mechanical.
// A guarded call is legal when, in source order within the same function
// body, a `.wmu.Lock()` precedes it with no intervening non-deferred
// `.wmu.Unlock()` — or when the enclosing function's name ends in
// "Locked", the convention for helpers whose contract says "callers hold
// wmu". Function literals are independent scopes: a goroutine closure
// cannot inherit its creator's lock. Deliberate escapes (handshake
// writes on a connection no other goroutine can reach yet) carry a
// `//lint:reason`.
//
// This is a flow-insensitive approximation (a Lock in a dead branch
// counts), which is the standard lint trade-off: it accepts slightly too
// much, never silently — every real desync bug in the PR-6 family had no
// Lock in the function at all.
package codeclock

import (
	"go/ast"
	"sort"
	"strings"

	"snet/internal/analysis/framework"
)

// wirePath is the package this analyzer scopes itself to.
const wirePath = "snet/internal/wire"

// writeMutex is the field name the wire package uses for link write
// mutexes, on both the coordinator (peer.wmu) and worker (Worker.wmu)
// sides.
const writeMutex = "wmu"

// Analyzer is the codeclock pass.
var Analyzer = &framework.Analyzer{
	Name: "codeclock",
	Doc: "codec encodes and connection writes in the wire transport must hold the link write mutex, " +
		"so the codec's label negotiation order is pinned to the wire order",
	Run: run,
}

func run(pass *framework.Pass) error {
	if pass.Path != wirePath {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, fd.Name.Name, fd.Body)
			// Function literals nested anywhere in the declaration are
			// their own scopes (checkScope skips them when sweeping the
			// outer body).
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkScope(pass, "", lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// event is one lock-relevant occurrence inside a function body, ordered
// by source position for the linear sweep.
type event struct {
	pos  int // file offset, for ordering
	kind int // 0 lock, 1 unlock, 2 guarded call
	node ast.Node
	desc string
}

// checkScope sweeps one function body (excluding nested function
// literals) in source order, tracking whether the write mutex is held.
func checkScope(pass *framework.Pass, funcName string, body *ast.BlockStmt) {
	lockedContext := strings.HasSuffix(funcName, "Locked")
	var events []event
	var walk func(n ast.Node, inDefer bool)
	walk = func(n ast.Node, inDefer bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // independent scope
			case *ast.DeferStmt:
				walk(m.Call, true)
				return false
			case *ast.CallExpr:
				sel, ok := framework.Unparen(m.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				switch {
				case isMutexOp(sel, "Lock"):
					events = append(events, event{pos: int(m.Pos()), kind: 0, node: m})
				case isMutexOp(sel, "Unlock"):
					if !inDefer { // deferred unlock keeps the body locked
						events = append(events, event{pos: int(m.Pos()), kind: 1, node: m})
					}
				default:
					if desc, guarded := guardedCall(pass, sel); guarded {
						events = append(events, event{pos: int(m.Pos()), kind: 2, node: m, desc: desc})
					}
				}
			}
			return true
		})
	}
	walk(body, false)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	locked := lockedContext
	for _, ev := range events {
		switch ev.kind {
		case 0:
			locked = true
		case 1:
			locked = false
		case 2:
			if locked || pass.Allowed(ev.node) {
				continue
			}
			pass.Reportf(ev.node.Pos(), "%s outside the link write mutex (%s): encode order must be "+
				"pinned to wire order or the peer's label table desynchronizes", ev.desc, writeMutex)
		}
	}
}

// isMutexOp matches `<expr>.wmu.Lock()` / `<expr>.wmu.Unlock()` (or a
// bare `wmu.Lock()`), syntactically.
func isMutexOp(sel *ast.SelectorExpr, op string) bool {
	if sel.Sel.Name != op {
		return false
	}
	switch x := framework.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x.Name == writeMutex
	case *ast.SelectorExpr:
		return x.Sel.Name == writeMutex
	}
	return false
}

// guardedCall reports whether the selector call is one the invariant
// covers: a dist.Codec encode, or a net.Conn write.
func guardedCall(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	name := sel.Sel.Name
	if name != "Marshal" && name != "MarshalBatch" && name != "Write" {
		return "", false
	}
	pkgPath, typeName, ok := pass.NamedRecv(sel)
	if !ok {
		return "", false
	}
	if (name == "Marshal" || name == "MarshalBatch") && typeName == "Codec" && pkgPath == "snet/internal/dist" {
		return "dist.Codec." + name, true
	}
	if name == "Write" && typeName == "Conn" && pkgPath == "net" {
		return "net.Conn.Write", true
	}
	return "", false
}
