package codeclock_test

import (
	"testing"

	"snet/internal/analysis/analysistest"
	"snet/internal/analysis/codeclock"
	"snet/internal/analysis/framework"
)

func TestCodeclock(t *testing.T) {
	analysistest.Run(t, "testdata",
		[]*framework.Analyzer{codeclock.Analyzer},
		"snet/internal/wire")
}
