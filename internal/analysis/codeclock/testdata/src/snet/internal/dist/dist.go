// Fixture stand-in for snet/internal/dist: just enough surface for the
// codeclock analyzer to resolve Codec encode calls by type.
package dist

type Codec struct{}

func (c *Codec) Marshal(v any) ([]byte, error) { return nil, nil }

func (c *Codec) MarshalBatch(v []any) ([]byte, error) { return nil, nil }
