// Fixture impersonating snet/internal/wire for the codeclock analyzer:
// codec encodes and conn writes must happen under the link write mutex.
package wire

import (
	"net"
	"sync"

	"snet/internal/dist"
)

type peer struct {
	wmu   sync.Mutex
	conn  net.Conn
	codec *dist.Codec
}

func (p *peer) goodSend(v any) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	b, err := p.codec.Marshal(v)
	if err != nil {
		return err
	}
	_, err = p.conn.Write(b)
	return err
}

// writeLocked follows the naming convention: callers hold p.wmu.
func (p *peer) writeLocked(b []byte) error {
	_, err := p.conn.Write(b)
	return err
}

func (p *peer) badEncode(v any) {
	b, _ := p.codec.Marshal(v) // want "dist.Codec.Marshal outside the link write mutex"
	_, _ = p.conn.Write(b)     // want "net.Conn.Write outside the link write mutex"
}

func (p *peer) badBatch(vs []any) {
	_, _ = p.codec.MarshalBatch(vs) // want "dist.Codec.MarshalBatch outside the link write mutex"
}

func (p *peer) badUnlockThenWrite(b []byte) {
	p.wmu.Lock()
	p.wmu.Unlock()
	_, _ = p.conn.Write(b) // want "net.Conn.Write outside the link write mutex"
}

func (p *peer) badClosure(b []byte) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	go func() {
		_, _ = p.conn.Write(b) // want "net.Conn.Write outside the link write mutex"
	}()
}

func (p *peer) handshake(b []byte) {
	_, _ = p.conn.Write(b) //lint:reason handshake write: no other goroutine can reach this conn yet
}
