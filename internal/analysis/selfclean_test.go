package analysis

import (
	"path/filepath"
	"runtime"
	"testing"

	"snet/internal/analysis/framework"
)

// The full analyzer suite must come up clean on the tree that ships it:
// every invariant either holds or carries a written //lint:reason. This
// is the same run scripts/lint.sh performs in CI.
func TestSuiteCleanOnOwnTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository from source")
	}
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	root := filepath.Join(filepath.Dir(thisFile), "..", "..")
	ld := &framework.Loader{Dir: root}
	diags, err := framework.RunAnalyzers(ld, []string{"./..."}, All())
	if err != nil {
		t.Fatalf("running the suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
