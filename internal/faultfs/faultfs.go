// Package faultfs wraps a journal.FS with a deterministic disk fault
// schedule — the disk sibling of internal/faultwire. Journal recovery
// paths (short writes, torn frames, failing fsyncs, crash-truncated
// tails) are unit-testable without real crashes: the test arms a fault,
// drives the journal, and asserts the recovery outcome.
//
// Faults are armed on the FS and apply to the files opened through it:
//
//   - FailWrite(n, keep): the n-th Write (1-based, counted across all
//     files) writes only keep bytes and returns an error — a short write.
//   - FailSync(n): the n-th and every later Sync returns an error.
//   - CutAfter(total): writes beyond total bytes (counted across all
//     files) are silently discarded while still reporting success — the
//     page-cache tail lost to a crash, which is how a torn frame reaches
//     disk in the wild.
//
// The zero schedule is transparent. All methods are safe for concurrent
// use.
package faultfs

import (
	"errors"
	"sync"

	"snet/internal/journal"
)

// ErrInjected is the error returned by injected write and sync failures.
var ErrInjected = errors.New("faultfs: injected fault")

// FS wraps an inner journal.FS with the fault schedule.
type FS struct {
	inner journal.FS

	mu        sync.Mutex
	writes    int // Writes observed so far
	syncs     int // Syncs observed so far
	written   int // payload bytes accepted so far (CutAfter accounting)
	failWrite int // 1-based write index to shorten; 0 = disarmed
	shortKeep int // bytes the failing write still persists
	failSync  int // 1-based sync index from which Syncs fail; 0 = disarmed
	cutAfter  int // byte budget; <0 = disarmed
}

// New wraps inner with an empty fault schedule.
func New(inner journal.FS) *FS {
	return &FS{inner: inner, cutAfter: -1}
}

// FailWrite arms a short write: the n-th Write (1-based, from now) persists
// only keep bytes and returns ErrInjected.
func (f *FS) FailWrite(n, keep int) {
	f.mu.Lock()
	f.failWrite = f.writes + n
	f.shortKeep = keep
	f.mu.Unlock()
}

// FailSync makes the n-th (1-based, from now) and all later Syncs return
// ErrInjected.
func (f *FS) FailSync(n int) {
	f.mu.Lock()
	f.failSync = f.syncs + n
	f.mu.Unlock()
}

// CutAfter discards (successfully, from the writer's point of view) every
// byte written past the given budget from now — the crash-torn tail.
func (f *FS) CutAfter(total int) {
	f.mu.Lock()
	f.cutAfter = f.written + total
	f.mu.Unlock()
}

// Writes returns how many Write calls the FS has observed.
func (f *FS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Syncs returns how many Sync calls the FS has observed.
func (f *FS) Syncs() int { f.mu.Lock(); defer f.mu.Unlock(); return f.syncs }

// OpenAppend opens the inner file wrapped with the fault schedule.
func (f *FS) OpenAppend(name string) (journal.File, error) {
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

// ReadFile delegates to the inner FS.
func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Remove delegates to the inner FS.
func (f *FS) Remove(name string) error { return f.inner.Remove(name) }

// List delegates to the inner FS.
func (f *FS) List() ([]string, error) { return f.inner.List() }

type file struct {
	fs    *FS
	inner journal.File
}

// Write applies the armed write faults before delegating.
func (w *file) Write(p []byte) (int, error) {
	f := w.fs
	f.mu.Lock()
	f.writes++
	short := f.failWrite > 0 && f.writes == f.failWrite
	keep := f.shortKeep
	cut := f.cutAfter
	if short {
		f.failWrite = 0
	}
	if short && keep > len(p) {
		keep = len(p)
	}
	persist := p
	if short {
		persist = p[:keep]
	}
	if cut >= 0 {
		room := cut - f.written
		if room < 0 {
			room = 0
		}
		if room < len(persist) {
			persist = persist[:room]
		}
	}
	f.written += len(persist)
	f.mu.Unlock()
	if len(persist) > 0 {
		if n, err := w.inner.Write(persist); err != nil {
			return n, err
		}
	}
	if short {
		return len(persist), ErrInjected
	}
	// A cut write lies like a crashed kernel would: success, tail gone.
	return len(p), nil
}

// Sync applies the armed sync fault before delegating.
func (w *file) Sync() error {
	f := w.fs
	f.mu.Lock()
	f.syncs++
	fail := f.failSync > 0 && f.syncs >= f.failSync
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return w.inner.Sync()
}

// Close delegates to the inner file.
func (w *file) Close() error { return w.inner.Close() }
