// Package lang implements the S-Net language front end: lexer, abstract
// syntax tree and parser for the concrete syntax used in the paper —
// box and net declarations, connect expressions with the four combinators
// and their deterministic variants, placement combinators, filters,
// synchrocells, record patterns and guard expressions.
//
// The grammar is a faithful subset of the S-Net Language Report 2.0
// sufficient to parse the paper's Figures 2, 3 and 4 verbatim.
package lang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	EOF TokKind = iota
	IDENT
	INT

	// keywords
	KwBox
	KwNet
	KwConnect

	// punctuation and operators
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBrack   // [
	RBrack   // ]
	LSync    // [|
	RSync    // |]
	DotDot   // ..
	Pipe     // |
	PipePipe // ||
	Star     // *
	StarStar // **
	Bang     // !
	BangBang // !!
	BangAt   // !@
	AtSign   // @
	Arrow    // ->
	Semi     // ;
	Comma    // ,
	Lt       // <
	Gt       // >
	Le       // <=
	Ge       // >=
	EqEq     // ==
	Neq      // !=
	Assign   // =
	Plus     // +
	Minus    // -
	PlusEq   // +=
	MinusEq  // -=
	Slash    // /
	Percent  // %
	Hash     // #
)

var kindNames = map[TokKind]string{
	EOF: "end of input", IDENT: "identifier", INT: "integer",
	KwBox: "'box'", KwNet: "'net'", KwConnect: "'connect'",
	LParen: "'('", RParen: "')'", LBrace: "'{'", RBrace: "'}'",
	LBrack: "'['", RBrack: "']'", LSync: "'[|'", RSync: "'|]'",
	DotDot: "'..'", Pipe: "'|'", PipePipe: "'||'",
	Star: "'*'", StarStar: "'**'", Bang: "'!'", BangBang: "'!!'",
	BangAt: "'!@'", AtSign: "'@'", Arrow: "'->'", Semi: "';'", Comma: "','",
	Lt: "'<'", Gt: "'>'", Le: "'<='", Ge: "'>='", EqEq: "'=='", Neq: "'!='",
	Assign: "'='", Plus: "'+'", Minus: "'-'", PlusEq: "'+='", MinusEq: "'-='",
	Slash: "'/'", Percent: "'%'", Hash: "'#'",
}

// String returns a human-readable token kind name.
func (k TokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // for IDENT and INT
	Val  int    // for INT
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INT:
		return fmt.Sprintf("integer %d", t.Val)
	default:
		return t.Kind.String()
	}
}
