package lang

import "fmt"

// Lexer turns S-Net source text into tokens. It supports //-line and
// /*block*/ comments and tracks line/column positions.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole input. The returned slice always ends with an EOF
// token.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := Pos{l.line, l.col}
			l.advance()
			l.advance()
			for {
				if l.pos >= len(l.src) {
					return fmt.Errorf("%s: unterminated block comment", start)
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := Pos{l.line, l.col}
	if l.pos >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		switch text {
		case "box":
			return Token{Kind: KwBox, Text: text, Pos: pos}, nil
		case "net":
			return Token{Kind: KwNet, Text: text, Pos: pos}, nil
		case "connect":
			return Token{Kind: KwConnect, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.pos
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		val := 0
		for _, d := range text {
			val = val*10 + int(d-'0')
		}
		return Token{Kind: INT, Text: text, Val: val, Pos: pos}, nil
	}

	two := func(kind TokKind) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}
	one := func(kind TokKind) (Token, error) {
		l.advance()
		return Token{Kind: kind, Pos: pos}, nil
	}

	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		if l.peek2() == '|' {
			return two(LSync)
		}
		return one(LBrack)
	case ']':
		return one(RBrack)
	case '|':
		switch l.peek2() {
		case ']':
			return two(RSync)
		case '|':
			return two(PipePipe)
		}
		return one(Pipe)
	case '.':
		if l.peek2() == '.' {
			return two(DotDot)
		}
		return Token{}, fmt.Errorf("%s: unexpected '.' (did you mean '..'?)", pos)
	case '*':
		if l.peek2() == '*' {
			return two(StarStar)
		}
		return one(Star)
	case '!':
		switch l.peek2() {
		case '@':
			return two(BangAt)
		case '!':
			return two(BangBang)
		case '=':
			return two(Neq)
		}
		return one(Bang)
	case '@':
		return one(AtSign)
	case '-':
		switch l.peek2() {
		case '>':
			return two(Arrow)
		case '=':
			return two(MinusEq)
		}
		return one(Minus)
	case '+':
		if l.peek2() == '=' {
			return two(PlusEq)
		}
		return one(Plus)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '<':
		if l.peek2() == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if l.peek2() == '=' {
			return two(Ge)
		}
		return one(Gt)
	case '=':
		if l.peek2() == '=' {
			return two(EqEq)
		}
		return one(Assign)
	case '/':
		return one(Slash)
	case '%':
		return one(Percent)
	case '#':
		return one(Hash)
	}
	return Token{}, fmt.Errorf("%s: unexpected character %q", pos, string(c))
}
