package lang

import "fmt"

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses an S-Net compilation unit.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	prog := &Program{}
	for p.cur().Kind != EOF {
		def, err := p.parseDef()
		if err != nil {
			return nil, err
		}
		prog.Defs = append(prog.Defs, def)
	}
	return prog, nil
}

// ParseExpr parses a standalone connect expression (used in tests and by
// the snetc REPL-ish mode).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != EOF {
		return nil, p.errf("trailing input after expression: %s", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if !p.at(k) {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...))
}

// parseDef parses `box …;` or `net …`.
func (p *Parser) parseDef() (Def, error) {
	switch p.cur().Kind {
	case KwBox:
		return p.parseBoxDecl()
	case KwNet:
		return p.parseNetDecl()
	default:
		return nil, p.errf("expected 'box' or 'net' declaration, found %s", p.cur())
	}
}

// parseBoxDecl parses: box name ( (labels) -> (labels) | (labels) ) ;
func (p *Parser) parseBoxDecl() (*BoxDecl, error) {
	kw, _ := p.expect(KwBox)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	m, err := p.parseMapping()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &BoxDecl{Name: name.Text, Sig: m, Pos: kw.Pos}, nil
}

// parseMapping parses: (labels) -> (labels) { | (labels) }
func (p *Parser) parseMapping() (Mapping, error) {
	in, err := p.parseTuple()
	if err != nil {
		return Mapping{}, err
	}
	if _, err := p.expect(Arrow); err != nil {
		return Mapping{}, err
	}
	var outs [][]LabelItem
	out, err := p.parseTuple()
	if err != nil {
		return Mapping{}, err
	}
	outs = append(outs, out)
	for p.accept(Pipe) {
		out, err := p.parseTuple()
		if err != nil {
			return Mapping{}, err
		}
		outs = append(outs, out)
	}
	return Mapping{In: in, Outs: outs}, nil
}

// parseTuple parses: ( [label {, label}] )
func (p *Parser) parseTuple() ([]LabelItem, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	var items []LabelItem
	if !p.at(RParen) {
		for {
			it, err := p.parseLabelItem()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	return items, nil
}

// parseLabelItem parses: name | <name> | <#name>
func (p *Parser) parseLabelItem() (LabelItem, error) {
	pos := p.cur().Pos
	if p.accept(Lt) {
		btag := p.accept(Hash)
		name, err := p.expect(IDENT)
		if err != nil {
			return LabelItem{}, err
		}
		if _, err := p.expect(Gt); err != nil {
			return LabelItem{}, err
		}
		return LabelItem{Name: name.Text, Tag: !btag, BTag: btag, Pos: pos}, nil
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return LabelItem{}, err
	}
	return LabelItem{Name: name.Text, Pos: pos}, nil
}

// parseNetDecl parses either a full definition:
//
//	net name { decls } connect expr ;
//
// or a forward declaration by signature:
//
//	net name ( (in)->(out), (in)->(out) );
func (p *Parser) parseNetDecl() (*NetDecl, error) {
	kw, _ := p.expect(KwNet)
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	n := &NetDecl{Name: name.Text, Pos: kw.Pos}

	if p.accept(LParen) { // forward declaration
		for {
			m, err := p.parseMapping()
			if err != nil {
				return nil, err
			}
			n.SigOnly = append(n.SigOnly, m)
			if !p.accept(Comma) {
				break
			}
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return n, nil
	}

	if p.accept(LBrace) {
		for !p.at(RBrace) {
			d, err := p.parseDef()
			if err != nil {
				return nil, err
			}
			n.Decls = append(n.Decls, d)
		}
		p.next() // consume }
	}
	if _, err := p.expect(KwConnect); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	n.Connect = e
	p.accept(Semi)
	return n, nil
}

// parseExpr parses a connect expression. Serial composition '..' binds
// tighter than parallel composition '|'.
func (p *Parser) parseExpr() (Expr, error) { return p.parseChoice() }

func (p *Parser) parseChoice() (Expr, error) {
	l, err := p.parseSerial()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(Pipe):
			r, err := p.parseSerial()
			if err != nil {
				return nil, err
			}
			l = &ChoiceExpr{L: l, R: r}
		case p.accept(PipePipe):
			r, err := p.parseSerial()
			if err != nil {
				return nil, err
			}
			l = &ChoiceExpr{L: l, R: r, Det: true}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseSerial() (Expr, error) {
	l, err := p.parsePostfix()
	if err != nil {
		return nil, err
	}
	for p.accept(DotDot) {
		r, err := p.parsePostfix()
		if err != nil {
			return nil, err
		}
		l = &SerialExpr{L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(Star):
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			e = &StarExpr{Operand: e, Exit: pat}
		case p.accept(StarStar):
			pat, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			e = &StarExpr{Operand: e, Exit: pat, Det: true}
		case p.accept(Bang):
			tag, err := p.parseAngledIdent()
			if err != nil {
				return nil, err
			}
			e = &SplitExpr{Operand: e, Tag: tag}
		case p.accept(BangBang):
			tag, err := p.parseAngledIdent()
			if err != nil {
				return nil, err
			}
			e = &SplitExpr{Operand: e, Tag: tag, Det: true}
		case p.accept(BangAt):
			tag, err := p.parseAngledIdent()
			if err != nil {
				return nil, err
			}
			e = &SplitExpr{Operand: e, Tag: tag, Placed: true}
		case p.accept(AtSign):
			num, err := p.expect(INT)
			if err != nil {
				return nil, err
			}
			e = &AtExpr{Operand: e, Node: num.Val}
		default:
			return e, nil
		}
	}
}

func (p *Parser) parseAngledIdent() (string, error) {
	if _, err := p.expect(Lt); err != nil {
		return "", err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return "", err
	}
	if _, err := p.expect(Gt); err != nil {
		return "", err
	}
	return name.Text, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.cur().Kind {
	case IDENT:
		t := p.next()
		return &NameRef{Name: t.Text, Pos: t.Pos}, nil
	case LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	case LBrack:
		return p.parseFilter()
	case LSync:
		return p.parseSync()
	default:
		return nil, p.errf("expected a network expression, found %s", p.cur())
	}
}

// parseFilter parses [] or [ pattern -> tmpl ; tmpl ; ... ].
func (p *Parser) parseFilter() (Expr, error) {
	open, _ := p.expect(LBrack)
	if p.accept(RBrack) {
		return &FilterExpr{Pos: open.Pos}, nil
	}
	pat, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Arrow); err != nil {
		return nil, err
	}
	rule := &FilterRuleAST{Pattern: pat}
	for {
		tmpl, err := p.parseOutTemplate()
		if err != nil {
			return nil, err
		}
		rule.Outputs = append(rule.Outputs, tmpl)
		if !p.accept(Semi) {
			break
		}
	}
	if _, err := p.expect(RBrack); err != nil {
		return nil, err
	}
	return &FilterExpr{Rule: rule, Pos: open.Pos}, nil
}

// FilterRuleAST couples a filter's match pattern with its output templates.
type FilterRuleAST struct {
	Pattern *PatternAST
	Outputs []OutTemplateAST
}

// parseSync parses [| pattern, pattern, ... |].
func (p *Parser) parseSync() (Expr, error) {
	open, _ := p.expect(LSync)
	var pats []*PatternAST
	for {
		pat, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RSync); err != nil {
		return nil, err
	}
	return &SyncExpr{Patterns: pats, Pos: open.Pos}, nil
}

// parsePattern parses { item, item, ... } where each item is a label
// (field, <tag>, <#btag>) or a guard expression over tags such as
// <tasks> == <cnt>.
func (p *Parser) parsePattern() (*PatternAST, error) {
	open, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	pat := &PatternAST{Pos: open.Pos}
	for !p.at(RBrace) {
		if err := p.parsePatternItem(pat); err != nil {
			return nil, err
		}
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return nil, err
	}
	return pat, nil
}

// parsePatternItem distinguishes plain labels from guard expressions by
// lookahead: a label is an identifier or angled tag followed directly by
// ',' or '}'.
func (p *Parser) parsePatternItem(pat *PatternAST) error {
	pos := p.cur().Pos
	switch p.cur().Kind {
	case IDENT:
		// field label or bare-identifier expression
		name := p.next().Text
		if p.at(Comma) || p.at(RBrace) {
			pat.Labels = append(pat.Labels, LabelItem{Name: name, Pos: pos})
			return nil
		}
		left := TagExprAST(&TagRef{Name: name, Pos: pos})
		return p.continueGuard(pat, left)
	case Lt:
		p.next()
		if p.accept(Hash) {
			name, err := p.expect(IDENT)
			if err != nil {
				return err
			}
			if _, err := p.expect(Gt); err != nil {
				return err
			}
			pat.Labels = append(pat.Labels, LabelItem{Name: name.Text, BTag: true, Pos: pos})
			return nil
		}
		name, err := p.expect(IDENT)
		if err != nil {
			return err
		}
		if _, err := p.expect(Gt); err != nil {
			return err
		}
		if p.at(Comma) || p.at(RBrace) {
			pat.Labels = append(pat.Labels, LabelItem{Name: name.Text, Tag: true, Pos: pos})
			return nil
		}
		left := TagExprAST(&TagRef{Name: name.Text, Angled: true, Pos: pos})
		return p.continueGuard(pat, left)
	default:
		// expression starting with a literal, '(' or unary minus
		e, err := p.parseTagExpr()
		if err != nil {
			return err
		}
		if !IsComparison(e) {
			return fmt.Errorf("%s: pattern guard must be a comparison, got %s", pos, e)
		}
		pat.Guards = append(pat.Guards, e)
		return nil
	}
}

// continueGuard finishes parsing a guard whose first operand has already
// been consumed.
func (p *Parser) continueGuard(pat *PatternAST, left TagExprAST) error {
	e, err := p.parseCmpFrom(left)
	if err != nil {
		return err
	}
	if !IsComparison(e) {
		return fmt.Errorf("pattern guard must be a comparison, got %s", e)
	}
	pat.Guards = append(pat.Guards, e)
	return nil
}

// parseOutTemplate parses { item, item, ... } of a filter output.
func (p *Parser) parseOutTemplate() (OutTemplateAST, error) {
	open, err := p.expect(LBrace)
	if err != nil {
		return OutTemplateAST{}, err
	}
	tmpl := OutTemplateAST{Pos: open.Pos}
	for !p.at(RBrace) {
		it, err := p.parseOutItem()
		if err != nil {
			return OutTemplateAST{}, err
		}
		tmpl.Items = append(tmpl.Items, it)
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(RBrace); err != nil {
		return OutTemplateAST{}, err
	}
	return tmpl, nil
}

// parseOutItem parses: name | name -> name | <name> | <name = expr> |
// <name += expr> | <name -= expr>.
func (p *Parser) parseOutItem() (OutItemAST, error) {
	pos := p.cur().Pos
	if p.at(IDENT) {
		name := p.next().Text
		if p.accept(Arrow) {
			to, err := p.expect(IDENT)
			if err != nil {
				return OutItemAST{}, err
			}
			return OutItemAST{Kind: OutRenameField, Name: to.Text, From: name, Pos: pos}, nil
		}
		return OutItemAST{Kind: OutCopyField, Name: name, Pos: pos}, nil
	}
	if _, err := p.expect(Lt); err != nil {
		return OutItemAST{}, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return OutItemAST{}, err
	}
	switch {
	case p.accept(Gt):
		return OutItemAST{Kind: OutCopyTag, Name: name.Text, Pos: pos}, nil
	case p.at(Assign) || p.at(PlusEq) || p.at(MinusEq):
		op := p.next().Kind
		// Arithmetic only: a toplevel '>' must close the angle bracket,
		// not act as a comparison. Comparisons remain available inside
		// parentheses.
		e, err := p.parseAdd()
		if err != nil {
			return OutItemAST{}, err
		}
		if _, err := p.expect(Gt); err != nil {
			return OutItemAST{}, err
		}
		return OutItemAST{Kind: OutAssignTag, Name: name.Text, Expr: e, AddOp: op, Pos: pos}, nil
	default:
		return OutItemAST{}, p.errf("expected '>', '=', '+=' or '-=' in tag template, found %s", p.cur())
	}
}

// parseTagExpr parses a full tag expression (comparison precedence level).
func (p *Parser) parseTagExpr() (TagExprAST, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	return p.parseCmpFrom(l)
}

// parseCmpFrom continues at comparison precedence with left already parsed
// (left may still need additive continuation, e.g. <a> + 1 == 2).
func (p *Parser) parseCmpFrom(left TagExprAST) (TagExprAST, error) {
	l, err := p.parseAddFrom(left)
	if err != nil {
		return nil, err
	}
	switch p.cur().Kind {
	case EqEq, Neq, Lt, Gt, Le, Ge:
		op := p.next().Kind
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseAdd() (TagExprAST, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	return p.parseAddFrom(l)
}

// parseAddFrom continues additive/multiplicative parsing with left parsed.
func (p *Parser) parseAddFrom(left TagExprAST) (TagExprAST, error) {
	l, err := p.parseMulFrom(left)
	if err != nil {
		return nil, err
	}
	for p.at(Plus) || p.at(Minus) {
		op := p.next().Kind
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMul() (TagExprAST, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseMulFrom(l)
}

func (p *Parser) parseMulFrom(left TagExprAST) (TagExprAST, error) {
	l := left
	for p.at(Star) || p.at(Slash) || p.at(Percent) {
		op := p.next().Kind
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (TagExprAST, error) {
	if p.at(Minus) {
		pos := p.next().Pos
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: Minus, L: &IntLit{Val: 0, Pos: pos}, R: e}, nil
	}
	return p.parseAtom()
}

func (p *Parser) parseAtom() (TagExprAST, error) {
	switch p.cur().Kind {
	case INT:
		t := p.next()
		return &IntLit{Val: t.Val, Pos: t.Pos}, nil
	case IDENT:
		t := p.next()
		return &TagRef{Name: t.Text, Pos: t.Pos}, nil
	case Lt:
		p.next()
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Gt); err != nil {
			return nil, err
		}
		return &TagRef{Name: name.Text, Angled: true}, nil
	case LParen:
		p.next()
		e, err := p.parseTagExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, p.errf("expected a tag expression, found %s", p.cur())
	}
}
