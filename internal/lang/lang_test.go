package lang

import (
	"strings"
	"testing"
)

// The paper's Fig. 2 program, verbatim (modulo whitespace).
const fig2Src = `
net raytracing_stat
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <tasks>, <fst>)
                   | (scene, sect, <node>, <tasks> ));
    box solver ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
} connect
    splitter .. solver!@<node> .. merger .. genImg
`

// The paper's Fig. 3 merger network, verbatim.
const fig3Src = `
net merger
{
    box init  ( (chunk, <fst>) -> (pic));
    box merge ( (chunk, pic) -> (pic));
} connect
    ( ( init .. [ {} -> {<cnt=1>} ] )
      | []
    )
    .. ( [| {pic}, {chunk} |]
         .. ( ( merge
                .. [ {<cnt>} -> {<cnt+=1>}]
              )
              | []
            )
       )*{<tasks> == <cnt>} ;
`

// The paper's Fig. 4 solver segment, verbatim (expression form).
const fig4Src = `
( ( ( solve .. [ {chunk, <node>}
                 -> {chunk}; {<node>} ]
    )!@<node>
    | []
  )
  .. ( [] | [| {sect}, {<node>} |] )
) * {chunk}
`

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("box net connect a1 42 ( ) { } [ ] [| |] .. | || * ** ! !! !@ @ -> ; , < > <= >= == != = + - += -= / % #")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{
		KwBox, KwNet, KwConnect, IDENT, INT,
		LParen, RParen, LBrace, RBrace, LBrack, RBrack, LSync, RSync,
		DotDot, Pipe, PipePipe, Star, StarStar, Bang, BangBang, BangAt,
		AtSign, Arrow, Semi, Comma, Lt, Gt, Le, Ge, EqEq, Neq, Assign,
		Plus, Minus, PlusEq, MinusEq, Slash, Percent, Hash, EOF,
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Fatalf("token %d = %s, want %s", i, toks[i].Kind, k)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("a // line comment\n /* block\ncomment */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[0].Text != "a" || toks[1].Text != "b" {
		t.Fatalf("toks = %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{2, 3}) {
		t.Fatalf("positions = %v %v", toks[0].Pos, toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{".", "$", "/* unterminated"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) succeeded, want error", src)
		}
	}
}

func TestLexIntValue(t *testing.T) {
	toks, err := Lex("12345")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Val != 12345 {
		t.Fatalf("Val = %d", toks[0].Val)
	}
}

func TestParseFig2(t *testing.T) {
	prog, err := Parse(fig2Src)
	if err != nil {
		t.Fatalf("Fig. 2 failed to parse: %v", err)
	}
	if len(prog.Defs) != 1 {
		t.Fatalf("got %d toplevel defs", len(prog.Defs))
	}
	net, ok := prog.Defs[0].(*NetDecl)
	if !ok || net.Name != "raytracing_stat" {
		t.Fatalf("toplevel = %#v", prog.Defs[0])
	}
	if len(net.Decls) != 4 {
		t.Fatalf("nested decls = %d, want 4", len(net.Decls))
	}
	// splitter box with two output variants
	splitter := net.Decls[0].(*BoxDecl)
	if splitter.Name != "splitter" || len(splitter.Sig.Outs) != 2 {
		t.Fatalf("splitter = %s", splitter)
	}
	if len(splitter.Sig.In) != 3 || !splitter.Sig.In[1].Tag {
		t.Fatalf("splitter input = %v", splitter.Sig.In)
	}
	// merger forward declaration with two mappings
	merger := net.Decls[2].(*NetDecl)
	if len(merger.SigOnly) != 2 {
		t.Fatalf("merger sig-only mappings = %d", len(merger.SigOnly))
	}
	// genImg with empty output
	genImg := net.Decls[3].(*BoxDecl)
	if len(genImg.Sig.Outs) != 1 || len(genImg.Sig.Outs[0]) != 0 {
		t.Fatalf("genImg outs = %v", genImg.Sig.Outs)
	}
	// connect: splitter .. solver!@<node> .. merger .. genImg
	s, ok := net.Connect.(*SerialExpr)
	if !ok {
		t.Fatalf("connect = %T", net.Connect)
	}
	// left-assoc: ((splitter .. split) .. merger) .. genImg
	if ref, ok := s.R.(*NameRef); !ok || ref.Name != "genImg" {
		t.Fatalf("last stage = %v", s.R)
	}
	inner := s.L.(*SerialExpr).L.(*SerialExpr)
	split, ok := inner.R.(*SplitExpr)
	if !ok || !split.Placed || split.Tag != "node" {
		t.Fatalf("solver placement = %#v", inner.R)
	}
}

func TestParseFig3(t *testing.T) {
	prog, err := Parse(fig3Src)
	if err != nil {
		t.Fatalf("Fig. 3 failed to parse: %v", err)
	}
	net := prog.Defs[0].(*NetDecl)
	if net.Name != "merger" || len(net.Decls) != 2 {
		t.Fatalf("net = %s", net.Name)
	}
	// The connect is (init-path | bypass) .. star.
	top, ok := net.Connect.(*SerialExpr)
	if !ok {
		t.Fatalf("connect = %T", net.Connect)
	}
	star, ok := top.R.(*StarExpr)
	if !ok {
		t.Fatalf("right of serial = %T, want star", top.R)
	}
	if len(star.Exit.Guards) != 1 || len(star.Exit.Labels) != 0 {
		t.Fatalf("star exit = %s", star.Exit)
	}
	guard := star.Exit.Guards[0].(*BinExpr)
	if guard.Op != EqEq {
		t.Fatalf("guard op = %v", guard.Op)
	}
	l := guard.L.(*TagRef)
	r := guard.R.(*TagRef)
	if l.Name != "tasks" || r.Name != "cnt" || !l.Angled || !r.Angled {
		t.Fatalf("guard operands = %v %v", l, r)
	}
	// star operand: sync .. (merge-path | bypass)
	inner, ok := star.Operand.(*SerialExpr)
	if !ok {
		t.Fatalf("star operand = %T", star.Operand)
	}
	sync, ok := inner.L.(*SyncExpr)
	if !ok || len(sync.Patterns) != 2 {
		t.Fatalf("sync = %#v", inner.L)
	}
	if sync.Patterns[0].Labels[0].Name != "pic" || sync.Patterns[1].Labels[0].Name != "chunk" {
		t.Fatalf("sync patterns = %s %s", sync.Patterns[0], sync.Patterns[1])
	}
	// the init path filter adds <cnt=1>
	choice := top.L.(*ChoiceExpr)
	initPath := choice.L.(*SerialExpr)
	filt := initPath.R.(*FilterExpr)
	item := filt.Rule.Outputs[0].Items[0]
	if item.Kind != OutAssignTag || item.Name != "cnt" || item.AddOp != Assign {
		t.Fatalf("init filter item = %#v", item)
	}
	if lit, ok := item.Expr.(*IntLit); !ok || lit.Val != 1 {
		t.Fatalf("init filter expr = %v", item.Expr)
	}
	// bypass is identity
	if id, ok := choice.R.(*FilterExpr); !ok || id.Rule != nil {
		t.Fatalf("bypass = %#v", choice.R)
	}
}

func TestParseFig3IncrementSugar(t *testing.T) {
	prog, err := Parse(fig3Src)
	if err != nil {
		t.Fatal(err)
	}
	// dig out the <cnt+=1> filter
	net := prog.Defs[0].(*NetDecl)
	star := net.Connect.(*SerialExpr).R.(*StarExpr)
	mergePath := star.Operand.(*SerialExpr).R.(*ChoiceExpr).L.(*SerialExpr)
	filt := mergePath.R.(*FilterExpr)
	item := filt.Rule.Outputs[0].Items[0]
	if item.AddOp != PlusEq || item.Name != "cnt" {
		t.Fatalf("increment item = %#v", item)
	}
}

func TestParseFig4(t *testing.T) {
	e, err := ParseExpr(fig4Src)
	if err != nil {
		t.Fatalf("Fig. 4 failed to parse: %v", err)
	}
	star, ok := e.(*StarExpr)
	if !ok {
		t.Fatalf("top = %T, want star", e)
	}
	if len(star.Exit.Labels) != 1 || star.Exit.Labels[0].Name != "chunk" || star.Exit.Labels[0].Tag {
		t.Fatalf("exit = %s", star.Exit)
	}
	serial := star.Operand.(*SerialExpr)
	// left: (placed-solve | []); right: ([] | sync)
	left := serial.L.(*ChoiceExpr)
	placed, ok := left.L.(*SplitExpr)
	if !ok || !placed.Placed || placed.Tag != "node" {
		t.Fatalf("placed solver = %#v", left.L)
	}
	solvePath := placed.Operand.(*SerialExpr)
	filt := solvePath.R.(*FilterExpr)
	if len(filt.Rule.Outputs) != 2 {
		t.Fatalf("solve filter outputs = %d, want 2", len(filt.Rule.Outputs))
	}
	if filt.Rule.Outputs[0].Items[0].Kind != OutCopyField ||
		filt.Rule.Outputs[1].Items[0].Kind != OutCopyTag {
		t.Fatalf("filter templates wrong: %s", filt)
	}
	right := serial.R.(*ChoiceExpr)
	sync, ok := right.R.(*SyncExpr)
	if !ok || len(sync.Patterns) != 2 {
		t.Fatalf("right sync = %#v", right.R)
	}
	if sync.Patterns[1].Labels[0].Name != "node" || !sync.Patterns[1].Labels[0].Tag {
		t.Fatalf("sync pattern 2 = %s", sync.Patterns[1])
	}
}

func TestParseDeterministicVariants(t *testing.T) {
	e, err := ParseExpr("a || b")
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := e.(*ChoiceExpr); !ok || !c.Det {
		t.Fatalf("e = %#v", e)
	}
	e, err = ParseExpr("a**{done}")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := e.(*StarExpr); !ok || !s.Det {
		t.Fatalf("e = %#v", e)
	}
	e, err = ParseExpr("a!!<k>")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := e.(*SplitExpr); !ok || !s.Det {
		t.Fatalf("e = %#v", e)
	}
}

func TestParsePrecedenceSerialOverChoice(t *testing.T) {
	e, err := ParseExpr("a .. b | c .. d")
	if err != nil {
		t.Fatal(err)
	}
	c, ok := e.(*ChoiceExpr)
	if !ok {
		t.Fatalf("top = %T, want choice", e)
	}
	if _, ok := c.L.(*SerialExpr); !ok {
		t.Fatalf("left = %T, want serial", c.L)
	}
	if _, ok := c.R.(*SerialExpr); !ok {
		t.Fatalf("right = %T, want serial", c.R)
	}
}

func TestParseAtPlacement(t *testing.T) {
	e, err := ParseExpr("solver@3")
	if err != nil {
		t.Fatal(err)
	}
	at, ok := e.(*AtExpr)
	if !ok || at.Node != 3 {
		t.Fatalf("e = %#v", e)
	}
}

func TestParseNestedPostfix(t *testing.T) {
	// (solver!<cpu>)!@<node> from Section V of the paper.
	e, err := ParseExpr("(solver!<cpu>)!@<node>")
	if err != nil {
		t.Fatal(err)
	}
	outer, ok := e.(*SplitExpr)
	if !ok || !outer.Placed || outer.Tag != "node" {
		t.Fatalf("outer = %#v", e)
	}
	inner, ok := outer.Operand.(*SplitExpr)
	if !ok || inner.Placed || inner.Tag != "cpu" {
		t.Fatalf("inner = %#v", outer.Operand)
	}
}

func TestParseGuardArithmetic(t *testing.T) {
	e, err := ParseExpr("a*{<n> + 1 == 2 * <m>}")
	if err != nil {
		t.Fatal(err)
	}
	star := e.(*StarExpr)
	if len(star.Exit.Guards) != 1 {
		t.Fatalf("guards = %v", star.Exit.Guards)
	}
	if star.Exit.Guards[0].String() != "<n> + 1 == 2 * <m>" {
		t.Fatalf("guard = %s", star.Exit.Guards[0])
	}
}

func TestParseMixedPatternLabelsAndGuard(t *testing.T) {
	e, err := ParseExpr("a*{pic, <cnt>, <tasks> == <cnt>}")
	if err != nil {
		t.Fatal(err)
	}
	star := e.(*StarExpr)
	if len(star.Exit.Labels) != 2 || len(star.Exit.Guards) != 1 {
		t.Fatalf("exit = %s", star.Exit)
	}
}

func TestParseBTagPattern(t *testing.T) {
	e, err := ParseExpr("[| {<#i>}, {x} |]")
	if err != nil {
		t.Fatal(err)
	}
	sync := e.(*SyncExpr)
	if !sync.Patterns[0].Labels[0].BTag {
		t.Fatalf("pattern = %s", sync.Patterns[0])
	}
}

func TestParseRenameItem(t *testing.T) {
	e, err := ParseExpr("[ {a} -> {a -> b} ]")
	if err != nil {
		t.Fatal(err)
	}
	f := e.(*FilterExpr)
	it := f.Rule.Outputs[0].Items[0]
	if it.Kind != OutRenameField || it.From != "a" || it.Name != "b" {
		t.Fatalf("item = %#v", it)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"box foo;",                   // missing signature
		"net x connect",              // missing expression
		"a ..",                       // dangling serial
		"a | ",                       // dangling choice
		"a*{<n> + 1}",                // guard is not a comparison
		"[ {a} -> {<t+} ]",           // malformed assignment
		"a!node",                     // split without angle brackets
		"a@x",                        // placement without integer
		"net x { box b ((a)->(b)) }", // missing semicolon after box
		"[| {a} |]",                  // synchrocell arity guard is in core, but lexically fine — keep parsing OK
	}
	for _, src := range cases[:9] {
		if _, err := Parse("net t connect " + src + ";"); err == nil {
			if _, err2 := ParseExpr(src); err2 == nil {
				t.Errorf("Parse(%q) succeeded, want error", src)
			}
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	// The printed form of a parsed program must re-parse to the same
	// printed form (idempotent pretty-printing).
	for _, src := range []string{fig2Src, fig3Src} {
		prog, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		printed := prog.Defs[0].(*NetDecl).String()
		prog2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printed form failed to parse: %v\n%s", err, printed)
		}
		printed2 := prog2.Defs[0].(*NetDecl).String()
		if printed != printed2 {
			t.Fatalf("printing not idempotent:\n%s\n---\n%s", printed, printed2)
		}
	}
}

func TestExprStringForms(t *testing.T) {
	cases := []string{
		"a .. b",
		"(a | b)",
		"(a)*{done}",
		"(a)!<k>",
		"(a)!@<node>",
		"(a)@2",
		"[]",
		"[ {<cnt>} -> {<cnt+=1>} ]",
		"[| {pic}, {chunk} |]",
	}
	for _, src := range cases {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", src, err)
		}
		// printed form must re-parse
		if _, err := ParseExpr(e.String()); err != nil {
			t.Fatalf("re-parse of %q (printed %q): %v", src, e.String(), err)
		}
	}
}

func TestTokenStrings(t *testing.T) {
	if !strings.Contains(Token{Kind: IDENT, Text: "foo"}.String(), "foo") {
		t.Fatal("IDENT token String wrong")
	}
	if !strings.Contains(Token{Kind: INT, Val: 7}.String(), "7") {
		t.Fatal("INT token String wrong")
	}
	if TokKind(999).String() == "" {
		t.Fatal("unknown TokKind String empty")
	}
}
