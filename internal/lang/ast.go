package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed S-Net compilation unit: a sequence of box and net
// declarations.
type Program struct {
	Defs []Def
}

// Def is a toplevel or nested declaration.
type Def interface {
	defNode()
	// DeclName returns the declared name.
	DeclName() string
}

// LabelItem is one entry of a tuple type or record pattern: a field, tag or
// binding-tag label.
type LabelItem struct {
	Name string
	Tag  bool // <name>
	BTag bool // <#name>
	Pos  Pos
}

// String renders the label in concrete syntax.
func (l LabelItem) String() string {
	switch {
	case l.BTag:
		return "<#" + l.Name + ">"
	case l.Tag:
		return "<" + l.Name + ">"
	default:
		return l.Name
	}
}

// Mapping is one type mapping `(in) -> (out1) | (out2)` of a box signature
// or a net forward declaration.
type Mapping struct {
	In   []LabelItem
	Outs [][]LabelItem
}

// String renders the mapping in concrete syntax.
func (m Mapping) String() string {
	outs := make([]string, len(m.Outs))
	for i, o := range m.Outs {
		outs[i] = tupleString(o)
	}
	return tupleString(m.In) + " -> " + strings.Join(outs, " | ")
}

func tupleString(items []LabelItem) string {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = it.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// BoxDecl declares an external box with its signature:
// box name ((a,<b>) -> (c) | (c,d,<e>));
type BoxDecl struct {
	Name string
	Sig  Mapping
	Pos  Pos
}

func (*BoxDecl) defNode() {}

// DeclName returns the box name.
func (b *BoxDecl) DeclName() string { return b.Name }

// String renders the declaration.
func (b *BoxDecl) String() string {
	return fmt.Sprintf("box %s (%s);", b.Name, b.Sig)
}

// NetDecl declares a network. Either Connect is non-nil (a full definition,
// optionally with nested declarations), or SigOnly is non-empty (a forward
// declaration by signature, as `net merger (...)` in the paper's Fig. 2,
// resolved against separately defined or registered networks).
type NetDecl struct {
	Name    string
	Decls   []Def
	Connect Expr
	SigOnly []Mapping
	Pos     Pos
}

func (*NetDecl) defNode() {}

// DeclName returns the net name.
func (n *NetDecl) DeclName() string { return n.Name }

// String renders the declaration.
func (n *NetDecl) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "net %s", n.Name)
	if len(n.SigOnly) > 0 {
		parts := make([]string, len(n.SigOnly))
		for i, m := range n.SigOnly {
			parts[i] = m.String()
		}
		fmt.Fprintf(&b, " (%s);", strings.Join(parts, ", "))
		return b.String()
	}
	if len(n.Decls) > 0 {
		b.WriteString(" {\n")
		for _, d := range n.Decls {
			b.WriteString("  " + strings.ReplaceAll(fmt.Sprint(d), "\n", "\n  ") + "\n")
		}
		b.WriteString("}")
	}
	fmt.Fprintf(&b, " connect %s;", n.Connect)
	return b.String()
}

// Expr is a network (connect) expression.
type Expr interface {
	exprNode()
	String() string
}

// NameRef references a declared box or net by name.
type NameRef struct {
	Name string
	Pos  Pos
}

func (*NameRef) exprNode() {}

// String returns the name.
func (n *NameRef) String() string { return n.Name }

// SerialExpr is A..B.
type SerialExpr struct {
	L, R Expr
}

func (*SerialExpr) exprNode() {}

// String renders A..B.
func (e *SerialExpr) String() string {
	return fmt.Sprintf("%s .. %s", e.L, e.R)
}

// ChoiceExpr is A|B (nondeterministic) or A||B (deterministic).
type ChoiceExpr struct {
	L, R Expr
	Det  bool
}

func (*ChoiceExpr) exprNode() {}

// String renders the choice.
func (e *ChoiceExpr) String() string {
	op := "|"
	if e.Det {
		op = "||"
	}
	return fmt.Sprintf("(%s %s %s)", e.L, op, e.R)
}

// StarExpr is A*pattern or A**pattern.
type StarExpr struct {
	Operand Expr
	Exit    *PatternAST
	Det     bool
}

func (*StarExpr) exprNode() {}

// String renders the star.
func (e *StarExpr) String() string {
	op := "*"
	if e.Det {
		op = "**"
	}
	return fmt.Sprintf("(%s)%s%s", e.Operand, op, e.Exit)
}

// SplitExpr is A!<tag>, A!!<tag>, or the placed A!@<tag>.
type SplitExpr struct {
	Operand Expr
	Tag     string
	Det     bool
	Placed  bool // !@ — indexed dynamic placement
}

func (*SplitExpr) exprNode() {}

// String renders the split.
func (e *SplitExpr) String() string {
	op := "!"
	if e.Det {
		op = "!!"
	}
	if e.Placed {
		op = "!@"
	}
	return fmt.Sprintf("(%s)%s<%s>", e.Operand, op, e.Tag)
}

// AtExpr is the static placement A@node.
type AtExpr struct {
	Operand Expr
	Node    int
}

func (*AtExpr) exprNode() {}

// String renders the placement.
func (e *AtExpr) String() string {
	return fmt.Sprintf("(%s)@%d", e.Operand, e.Node)
}

// FilterExpr is a filter [ pattern -> out1 ; out2 ] or the identity [].
type FilterExpr struct {
	// Rule is nil for the identity filter [].
	Rule *FilterRuleAST
	Pos  Pos
}

func (*FilterExpr) exprNode() {}

// String renders the filter.
func (e *FilterExpr) String() string {
	if e.Rule == nil {
		return "[]"
	}
	outs := make([]string, len(e.Rule.Outputs))
	for i, o := range e.Rule.Outputs {
		outs[i] = o.String()
	}
	return fmt.Sprintf("[ %s -> %s ]", e.Rule.Pattern, strings.Join(outs, "; "))
}

// SyncExpr is a synchrocell [| p1, p2, ... |].
type SyncExpr struct {
	Patterns []*PatternAST
	Pos      Pos
}

func (*SyncExpr) exprNode() {}

// String renders the synchrocell.
func (e *SyncExpr) String() string {
	parts := make([]string, len(e.Patterns))
	for i, p := range e.Patterns {
		parts[i] = p.String()
	}
	return "[| " + strings.Join(parts, ", ") + " |]"
}

// PatternAST is a record pattern: labels plus optional guard expressions,
// e.g. {sect, <node>} or {<tasks> == <cnt>}.
type PatternAST struct {
	Labels []LabelItem
	Guards []TagExprAST // each must be boolean-valued (comparison)
	Pos    Pos
}

// String renders the pattern in concrete syntax.
func (p *PatternAST) String() string {
	var parts []string
	for _, l := range p.Labels {
		parts = append(parts, l.String())
	}
	for _, g := range p.Guards {
		parts = append(parts, g.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// OutTemplateAST is one output record template of a filter rule.
type OutTemplateAST struct {
	Items []OutItemAST
	Pos   Pos
}

// String renders the template.
func (o OutTemplateAST) String() string {
	parts := make([]string, len(o.Items))
	for i, it := range o.Items {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// OutItemKind enumerates filter output template items.
type OutItemKind int

// Output template item kinds.
const (
	// OutCopyField copies a field from the input record.
	OutCopyField OutItemKind = iota
	// OutCopyTag copies a tag from the input record.
	OutCopyTag
	// OutAssignTag sets a tag to the value of an expression; the AddTo
	// flag marks the += / -= sugar.
	OutAssignTag
	// OutRenameField copies a field under a new name.
	OutRenameField
)

// OutItemAST is one item of an output template.
type OutItemAST struct {
	Kind  OutItemKind
	Name  string     // label name (target name for renames)
	From  string     // source field for renames
	Expr  TagExprAST // for OutAssignTag
	AddOp TokKind    // Assign, PlusEq or MinusEq for OutAssignTag
	Pos   Pos
}

// String renders the item.
func (o OutItemAST) String() string {
	switch o.Kind {
	case OutCopyField:
		return o.Name
	case OutCopyTag:
		return "<" + o.Name + ">"
	case OutRenameField:
		return o.From + " -> " + o.Name
	case OutAssignTag:
		op := "="
		switch o.AddOp {
		case PlusEq:
			op = "+="
		case MinusEq:
			op = "-="
		}
		return "<" + o.Name + op + o.Expr.String() + ">"
	}
	return "?"
}

// TagExprAST is an integer/boolean expression over tag values.
type TagExprAST interface {
	String() string
	tagExprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Val int
	Pos Pos
}

func (*IntLit) tagExprNode() {}

// String renders the literal.
func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Val) }

// TagRef references a tag value; Angled records whether the concrete syntax
// used <name> (guards) or a bare name (assignment right-hand sides).
type TagRef struct {
	Name   string
	Angled bool
	Pos    Pos
}

func (*TagRef) tagExprNode() {}

// String renders the reference.
func (e *TagRef) String() string {
	if e.Angled {
		return "<" + e.Name + ">"
	}
	return e.Name
}

// BinExpr is a binary arithmetic or comparison expression.
type BinExpr struct {
	Op   TokKind // Plus Minus Star Slash Percent EqEq Neq Lt Gt Le Ge
	L, R TagExprAST
}

func (*BinExpr) tagExprNode() {}

// String renders the expression.
func (e *BinExpr) String() string {
	op := map[TokKind]string{
		Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
		EqEq: "==", Neq: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	}[e.Op]
	return fmt.Sprintf("%s %s %s", e.L, op, e.R)
}

// IsComparison reports whether the expression's toplevel operator yields a
// boolean (i.e. the expression is usable as a guard).
func IsComparison(e TagExprAST) bool {
	b, ok := e.(*BinExpr)
	if !ok {
		return false
	}
	switch b.Op {
	case EqEq, Neq, Lt, Gt, Le, Ge:
		return true
	}
	return false
}
