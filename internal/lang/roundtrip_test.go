package lang

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genExpr generates a random connect expression of bounded depth, exploring
// every combinator and primary form the grammar offers.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return genPrimary(rng, 0)
	}
	switch rng.Intn(8) {
	case 0:
		return &SerialExpr{L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 1:
		return &ChoiceExpr{L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 2:
		return &ChoiceExpr{L: genExpr(rng, depth-1), R: genExpr(rng, depth-1), Det: true}
	case 3:
		return &StarExpr{Operand: genExpr(rng, depth-1), Exit: genPattern(rng), Det: rng.Intn(2) == 0}
	case 4:
		return &SplitExpr{Operand: genExpr(rng, depth-1), Tag: genName(rng), Det: rng.Intn(2) == 0}
	case 5:
		return &SplitExpr{Operand: genExpr(rng, depth-1), Tag: genName(rng), Placed: true}
	case 6:
		return &AtExpr{Operand: genExpr(rng, depth-1), Node: rng.Intn(16)}
	default:
		return genPrimary(rng, depth)
	}
}

func genPrimary(rng *rand.Rand, depth int) Expr {
	switch rng.Intn(4) {
	case 0:
		return &NameRef{Name: genName(rng)}
	case 1:
		return &FilterExpr{} // identity
	case 2:
		rule := &FilterRuleAST{Pattern: genPattern(rng)}
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			rule.Outputs = append(rule.Outputs, genTemplate(rng))
		}
		return &FilterExpr{Rule: rule}
	default:
		sync := &SyncExpr{}
		for i, n := 0, 2+rng.Intn(2); i < n; i++ {
			sync.Patterns = append(sync.Patterns, genPattern(rng))
		}
		return sync
	}
}

func genName(rng *rand.Rand) string {
	return fmt.Sprintf("n%c%d", 'a'+rune(rng.Intn(26)), rng.Intn(10))
}

func genPattern(rng *rand.Rand) *PatternAST {
	p := &PatternAST{}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		item := LabelItem{Name: genName(rng)}
		switch rng.Intn(3) {
		case 0:
			item.Tag = true
		case 1:
			item.BTag = true
		}
		p.Labels = append(p.Labels, item)
	}
	if rng.Intn(2) == 0 || (len(p.Labels) == 0 && rng.Intn(2) == 0) {
		ops := []TokKind{EqEq, Neq, Lt, Gt, Le, Ge}
		p.Guards = append(p.Guards, &BinExpr{
			Op: ops[rng.Intn(len(ops))],
			L:  genTagExpr(rng, 2),
			R:  genTagExpr(rng, 2),
		})
	}
	if len(p.Labels) == 0 && len(p.Guards) == 0 {
		p.Labels = append(p.Labels, LabelItem{Name: genName(rng)})
	}
	return p
}

func genTagExpr(rng *rand.Rand, depth int) TagExprAST {
	if depth <= 0 || rng.Intn(2) == 0 {
		if rng.Intn(2) == 0 {
			return &IntLit{Val: rng.Intn(100)}
		}
		return &TagRef{Name: genName(rng), Angled: true}
	}
	ops := []TokKind{Plus, Minus, Star, Slash, Percent}
	return &BinExpr{
		Op: ops[rng.Intn(len(ops))],
		L:  genTagExpr(rng, depth-1),
		R:  genTagExpr(rng, depth-1),
	}
}

func genTemplate(rng *rand.Rand) OutTemplateAST {
	t := OutTemplateAST{}
	for i, n := 0, rng.Intn(3); i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			t.Items = append(t.Items, OutItemAST{Kind: OutCopyField, Name: genName(rng)})
		case 1:
			t.Items = append(t.Items, OutItemAST{Kind: OutCopyTag, Name: genName(rng)})
		case 2:
			t.Items = append(t.Items, OutItemAST{
				Kind: OutRenameField, From: genName(rng), Name: genName(rng),
			})
		default:
			op := []TokKind{Assign, PlusEq, MinusEq}[rng.Intn(3)]
			t.Items = append(t.Items, OutItemAST{
				Kind: OutAssignTag, Name: genName(rng), AddOp: op,
				Expr: genTagExpr(rng, 2),
			})
		}
	}
	return t
}

// TestPropExprPrintParseRoundTrip: printing any generated expression and
// re-parsing it must yield the same printed form (print∘parse∘print =
// print). This exercises the printer/parser pair across the whole
// expression grammar, including precedence and the angle-bracket
// ambiguities.
func TestPropExprPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := genExpr(rng, 3)
		printed := e.String()
		e2, err := ParseExpr(printed)
		if err != nil {
			t.Logf("printed form failed to parse: %v\n%s", err, printed)
			return false
		}
		printed2 := e2.String()
		if printed != printed2 {
			t.Logf("not idempotent:\n%s\n---\n%s", printed, printed2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropGuardExprRoundTrip checks tag expressions in isolation through a
// star exit pattern.
func TestPropGuardExprRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := &BinExpr{Op: EqEq, L: genTagExpr(rng, 3), R: genTagExpr(rng, 3)}
		src := "a*{" + g.String() + "}"
		e, err := ParseExpr(src)
		if err != nil {
			t.Logf("%s: %v", src, err)
			return false
		}
		star := e.(*StarExpr)
		if len(star.Exit.Guards) != 1 {
			return false
		}
		return star.Exit.Guards[0].String() == g.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
