package journal_test

import (
	"strings"
	"testing"
	"time"

	"snet/internal/faultfs"
	"snet/internal/journal"
	"snet/internal/record"
)

func rec(i int) *record.Record {
	return record.New().SetField("payload", "value").SetTag("seq", i)
}

func openDir(t *testing.T, dir string, mut func(*journal.Config)) *journal.Journal {
	t.Helper()
	cfg := journal.Config{Dir: dir}
	if mut != nil {
		mut(&cfg)
	}
	j, err := journal.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j
}

func TestAppendRecoverAck(t *testing.T) {
	dir := t.TempDir()
	j := openDir(t, dir, nil)
	var ids []uint64
	for i := 0; i < 5; i++ {
		id, err := j.Append("box", rec(i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	if err := j.Ack([]uint64{ids[0], ids[2]}); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2 := openDir(t, dir, nil)
	defer j2.Close()
	got := j2.Recovered()
	if len(got) != 3 {
		t.Fatalf("recovered %d entries, want 3", len(got))
	}
	wantIDs := []uint64{ids[1], ids[3], ids[4]}
	for i, e := range got {
		if e.ID != wantIDs[i] {
			t.Errorf("recovered[%d].ID = %d, want %d", i, e.ID, wantIDs[i])
		}
		if e.Meta != "box" {
			t.Errorf("recovered[%d].Meta = %q, want box", i, e.Meta)
		}
		if v, _ := e.Rec.Field("payload"); v != "value" {
			t.Errorf("recovered[%d] payload = %v", i, v)
		}
		if seq, _ := e.Rec.Tag("seq"); seq != int(wantIDs[i]-1) {
			t.Errorf("recovered[%d] seq = %d, want %d", i, seq, wantIDs[i]-1)
		}
	}
	if next := j2.NextID(); next != ids[4]+1 {
		t.Errorf("NextID = %d, want %d", next, ids[4]+1)
	}
}

func TestRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	fs := journal.DirFS(dir)
	j := openDir(t, dir, func(c *journal.Config) { c.SegmentBytes = 256 })
	var ids []uint64
	for i := 0; i < 50; i++ {
		id, err := j.Append("", rec(i))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		ids = append(ids, id)
	}
	if s := j.Stats(); s.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", s.Segments)
	}
	// Acking everything lets every sealed segment truncate.
	if err := j.Ack(ids); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	if s := j.Stats(); s.Segments != 1 || s.Unacked != 0 {
		t.Fatalf("after full ack: %+v, want 1 segment, 0 unacked", s)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := fs.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(names) != 1 {
		t.Fatalf("disk has %d segments after truncation: %v", len(names), names)
	}

	j2 := openDir(t, dir, nil)
	defer j2.Close()
	if got := j2.Recovered(); len(got) != 0 {
		t.Fatalf("recovered %d entries after full ack, want 0", len(got))
	}
	if next := j2.NextID(); next != ids[49]+1 {
		t.Errorf("NextID = %d, want %d (ids survive truncation)", next, ids[49]+1)
	}
}

func TestTornTailRecoversPrefix(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(journal.DirFS(dir))
	j := openDir(t, dir, func(c *journal.Config) { c.FS = ffs })
	for i := 0; i < 3; i++ {
		if _, err := j.Append("", rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Cut the disk mid-frame: the 4th append "succeeds" (the crashed
	// kernel lied) but only half its frame reaches the platter.
	ffs.CutAfter(20)
	if _, err := j.Append("", rec(3)); err != nil {
		t.Fatalf("Append over cut: %v (the cut write must look successful)", err)
	}
	// No Close: this is a crash.

	j2 := openDir(t, dir, func(c *journal.Config) { c.FS = faultfs.New(journal.DirFS(dir)) })
	defer j2.Close()
	got := j2.Recovered()
	if len(got) != 3 {
		t.Fatalf("recovered %d entries past torn tail, want 3", len(got))
	}
	if s := j2.Stats(); s.Torn != 1 {
		t.Errorf("Torn = %d, want 1", s.Torn)
	}
	if next := j2.NextID(); next != 4 {
		t.Errorf("NextID = %d, want 4", next)
	}
}

func TestShortWriteSurfacesAndReseals(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(journal.DirFS(dir))
	j := openDir(t, dir, func(c *journal.Config) { c.FS = ffs })
	if _, err := j.Append("", rec(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.FailWrite(1, 7) // next frame: 7 bytes land, then the error
	if _, err := j.Append("", rec(1)); err == nil {
		t.Fatal("Append over short write succeeded, want error")
	}
	// The journal resealed onto a fresh segment; later appends must both
	// succeed and survive replay (the torn frame stays quarantined in the
	// sealed segment).
	id3, err := j.Append("", rec(2))
	if err != nil {
		t.Fatalf("Append after reseal: %v", err)
	}
	j.Close()

	j2 := openDir(t, dir, nil)
	defer j2.Close()
	got := j2.Recovered()
	if len(got) != 2 {
		t.Fatalf("recovered %d entries, want 2 (short-written frame dropped)", len(got))
	}
	if got[1].ID != id3 {
		t.Errorf("recovered[1].ID = %d, want %d", got[1].ID, id3)
	}
}

func TestFsyncAlwaysSurfacesSyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(journal.DirFS(dir))
	j := openDir(t, dir, func(c *journal.Config) {
		c.FS = ffs
		c.Fsync = journal.FsyncAlways
	})
	if _, err := j.Append("", rec(0)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	ffs.FailSync(1)
	if _, err := j.Append("", rec(1)); err == nil {
		t.Fatal("Append with failing fsync succeeded, want error")
	}
}

func TestFsyncBatchUsesInjectedClock(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(journal.DirFS(dir))
	now := time.Unix(1000, 0)
	j := openDir(t, dir, func(c *journal.Config) {
		c.FS = ffs
		c.Fsync = journal.FsyncBatch
		c.FsyncInterval = 100 * time.Millisecond
		c.Clock = journal.Clock{NowFn: func() time.Time { return now }}
	})
	base := ffs.Syncs()
	for i := 0; i < 10; i++ {
		if _, err := j.Append("", rec(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := ffs.Syncs(); got != base {
		t.Fatalf("appends within the interval synced %d times, want 0", got-base)
	}
	now = now.Add(150 * time.Millisecond)
	if _, err := j.Append("", rec(10)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if got := ffs.Syncs(); got != base+1 {
		t.Fatalf("append past the interval synced %d times, want 1", got-base)
	}
	j.Close()
}

func TestDuplicateIDDedupedOnReplay(t *testing.T) {
	// Two sessions can journal the same id only through fault windows;
	// replay must keep the first occurrence.
	dir := t.TempDir()
	j := openDir(t, dir, nil)
	id, err := j.Append("first", rec(0))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	j.Close()
	j2 := openDir(t, dir, nil)
	if n := len(j2.Recovered()); n != 1 {
		t.Fatalf("recovered %d, want 1", n)
	}
	j2.Close()
	_ = id
}

func TestBackoff(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		base, max time.Duration
		n         int
		want      time.Duration
	}{
		{0, 0, 1, 0},
		{10 * ms, 0, 1, 10 * ms},
		{10 * ms, 0, 3, 40 * ms},
		{10 * ms, 25 * ms, 3, 25 * ms},
		{10 * ms, 0, 0, 0},
	}
	for _, c := range cases {
		if got := journal.Backoff(c.base, c.max, c.n); got != c.want {
			t.Errorf("Backoff(%v,%v,%d) = %v, want %v", c.base, c.max, c.n, got, c.want)
		}
	}
}

func TestMetaTooLong(t *testing.T) {
	j := openDir(t, t.TempDir(), nil)
	defer j.Close()
	if _, err := j.Append(strings.Repeat("x", 70000), rec(0)); err == nil {
		t.Fatal("oversized meta accepted")
	}
}
