package journal

import "time"

// Clock is the journal's injected time source, mirroring wire.Clock: the
// fsync-interval batching decision and the box-retry backoff waits read
// time only through it, so durability tests (and the wallclock lint, whose
// scope covers this package) can drive both with synthetic time instead of
// sleeping.
//
// The zero value binds to real time on first use via the accessors below.
type Clock struct {
	// NowFn returns the current time; nil means time.Now.
	NowFn func() time.Time
	// TimerFn starts a one-shot timer; nil means time.NewTimer semantics.
	TimerFn func(d time.Duration) Timer
}

// Timer is a stoppable one-shot timer, the subset of *time.Timer the
// runtime's backoff waits need.
type Timer struct {
	C      <-chan time.Time
	StopFn func() bool
}

// Stop cancels the timer; it is safe on a Timer whose StopFn is nil.
func (t Timer) Stop() bool {
	if t.StopFn == nil {
		return false
	}
	return t.StopFn()
}

// Now returns the clock's current time.
func (c Clock) Now() time.Time {
	if c.NowFn != nil {
		return c.NowFn()
	}
	return time.Now() //lint:reason default real-time binding of the clock seam
}

// Timer starts a one-shot timer on the clock.
func (c Clock) Timer(d time.Duration) Timer {
	if c.TimerFn != nil {
		return c.TimerFn(d)
	}
	t := time.NewTimer(d) //lint:reason default real-time binding of the clock seam
	return Timer{C: t.C, StopFn: t.Stop}
}

// Backoff returns the delay before retry attempt n (1-based: the wait after
// the n-th failed attempt): base doubled per prior failure, capped at max.
// A non-positive base disables waiting; a non-positive max means uncapped.
func Backoff(base, max time.Duration, n int) time.Duration {
	if base <= 0 || n < 1 {
		return 0
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if max > 0 && d >= max {
			return max
		}
	}
	if max > 0 && d > max {
		return max
	}
	return d
}
