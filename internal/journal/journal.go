// Package journal implements the runtime's at-least-once durability log: a
// segmented append-only journal of ingress records, each assigned a
// monotonic delivery id when accepted. The runtime acks an id once every
// record descended from it has left the network (delivered, dead-lettered
// or sanctioned-dropped); records whose ids were never acked are recovered
// on the next Open and replayed, which is what turns a crash into duplicate
// work instead of lost records.
//
// # On-disk format
//
// A journal directory holds numbered segment files (seg-NNNNNN.wal). Each
// segment is a sequence of length-prefixed frames:
//
//	u32 payload length (LE) | u32 CRC-32 (IEEE) of payload | payload
//
// The payload's first byte discriminates the entry:
//
//	'A' (accept): u64 delivery id | u16 meta length | meta | record bytes
//	'K' (ack):    u16 count | count × u64 delivery id
//
// Record bytes use the stateful v2 dist codec — one codec session per
// segment, so every segment is self-contained and replayable in isolation.
// A frame that fails its CRC (or is cut short) ends the readable prefix of
// its segment: a torn tail from a crash mid-write costs the torn frame
// only, never the segment.
//
// Segments rotate at Config.SegmentBytes; a sealed segment whose accepts
// are all acked is deleted (truncation), so steady-state disk usage is
// bounded by the in-flight window, not history.
package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"time"

	"snet/internal/dist"
	"snet/internal/record"
)

const segPrefix = "seg-"

// frameHeader is the per-frame overhead: u32 length plus u32 CRC.
const frameHeader = 8

// maxFrame bounds a single frame so a corrupt length prefix cannot ask the
// replayer to buffer gigabytes; generously above any real ingress record.
const maxFrame = 64 << 20

// FsyncPolicy selects when appended frames are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncNever leaves flushing to the OS (and Close): cheapest, loses
	// the tail of the page cache on power failure — but never on process
	// crash, the failure mode this journal primarily defends.
	FsyncNever FsyncPolicy = iota
	// FsyncBatch syncs when the configured interval has elapsed since the
	// last sync, amortizing the fsync over the appends in between.
	FsyncBatch
	// FsyncAlways syncs every append before it is acknowledged.
	FsyncAlways
)

// String names the policy (used by benchmarks and diagnostics).
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncBatch:
		return "batch"
	case FsyncAlways:
		return "always"
	}
	return "never"
}

// DefaultSegmentBytes is the rotation threshold when Config leaves
// SegmentBytes zero.
const DefaultSegmentBytes = 4 << 20

// DefaultFsyncInterval is the FsyncBatch interval when Config leaves
// FsyncInterval zero.
const DefaultFsyncInterval = 25 * time.Millisecond

// Config parameterizes Open.
type Config struct {
	// Dir is the journal directory; ignored when FS is set.
	Dir string
	// FS overrides the filesystem (fault injection, tests); nil selects
	// DirFS(Dir).
	FS FS
	// SegmentBytes is the rotation threshold; zero selects
	// DefaultSegmentBytes.
	SegmentBytes int
	// Fsync selects the flush policy; FsyncInterval its period under
	// FsyncBatch (zero selects DefaultFsyncInterval).
	Fsync         FsyncPolicy
	FsyncInterval time.Duration
	// Clock drives the FsyncBatch interval decision; the zero value reads
	// real time.
	Clock Clock
	// Ext decodes/encodes extension field values (dist.ValueCodec), for
	// records whose fields are not wire scalars — e.g. a scene object
	// journaled by its spec.
	Ext dist.ValueCodec
}

// Entry is one recovered (accepted but never acked) record.
type Entry struct {
	// ID is the delivery id the record was accepted under.
	ID uint64
	// Meta is the opaque caller tag stored with the accept (the wire
	// coordinator stores the box name; the core ingress stores "").
	Meta string
	// Rec is the decoded record, owned by the caller.
	Rec *record.Record
}

// Stats is a snapshot of the journal's counters.
type Stats struct {
	// Appends and Acks count operations this session; Recovered and Torn
	// describe what Open found (unacked entries replayed, frames lost to
	// CRC/truncation damage).
	Appends, Acks, Recovered, Torn int
	// Segments is the live segment-file count; Unacked the accepts not
	// yet acked across all of them.
	Segments, Unacked int
}

// segState tracks one live segment's unacked accepts, the truncation unit.
type segState struct {
	name    string
	unacked map[uint64]struct{}
}

// Journal is an open journal. All methods are safe for concurrent use.
type Journal struct {
	// Concurrency: Append and Ack are called from different runtime
	// goroutines (intake pump vs outlet acker), serialized by mu.
	mu        sync.Mutex
	fs        FS
	cfg       Config
	cur       File
	curSize   int
	enc       *dist.Codec
	nextID    uint64
	nextSeg   int
	segs      []segState
	segOf     map[uint64]int // delivery id -> index into segs
	recovered []Entry
	lastSync  time.Time
	stats     Stats
	buf       []byte
	failed    error // sticky after an unrecoverable append failure
	closed    bool
}

// Open opens (or creates) the journal in cfg's directory, replays every
// segment to compute the unacked set — deduplicating accepts by delivery
// id, tolerating a torn tail per segment — deletes fully-acked sealed
// segments, and starts a fresh segment for this session's appends.
// Recovered entries are available from Recovered until the next Open.
func Open(cfg Config) (*Journal, error) {
	if cfg.FS == nil {
		if cfg.Dir == "" {
			return nil, fmt.Errorf("journal: Config needs Dir or FS")
		}
		cfg.FS = DirFS(cfg.Dir)
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.FsyncInterval <= 0 {
		cfg.FsyncInterval = DefaultFsyncInterval
	}
	j := &Journal{fs: cfg.FS, cfg: cfg, nextID: 1, segOf: map[uint64]int{}}
	names, err := cfg.FS.List()
	if err != nil {
		return nil, fmt.Errorf("journal: list segments: %w", err)
	}
	acked := map[uint64]struct{}{}
	var order []uint64 // accept order across segments
	byID := map[uint64]Entry{}
	for _, name := range names {
		if n, ok := segIndex(name); ok && n >= j.nextSeg {
			j.nextSeg = n + 1
		}
		data, err := cfg.FS.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("journal: read %s: %w", name, err)
		}
		st := segState{name: name, unacked: map[uint64]struct{}{}}
		j.segs = append(j.segs, st)
		si := len(j.segs) - 1
		dec := dist.NewCodec()
		if cfg.Ext != nil {
			dec.SetValueCodec(cfg.Ext)
		}
		j.replaySegment(si, data, dec, byID, &order, acked)
	}
	// The unacked set in accept order is what the caller replays.
	for _, id := range order {
		if _, ok := acked[id]; ok {
			continue
		}
		j.recovered = append(j.recovered, byID[id])
	}
	j.stats.Recovered = len(j.recovered)
	// Drop acked ids from the per-segment sets, then truncate sealed
	// segments left empty (every segment is sealed at this point — the
	// session's own segment is created below).
	for id := range acked {
		if si, ok := j.segOf[id]; ok {
			delete(j.segs[si].unacked, id)
			delete(j.segOf, id)
		}
	}
	j.truncate()
	if err := j.rotate(); err != nil {
		return nil, err
	}
	j.lastSync = cfg.Clock.Now()
	return j, nil
}

// replaySegment scans one segment's frames, stopping at the first torn or
// corrupt frame (counted, not fatal).
func (j *Journal) replaySegment(si int, data []byte, dec *dist.Codec,
	byID map[uint64]Entry, order *[]uint64, acked map[uint64]struct{}) {
	for len(data) > 0 {
		if len(data) < frameHeader {
			j.stats.Torn++
			return
		}
		n := binary.LittleEndian.Uint32(data)
		sum := binary.LittleEndian.Uint32(data[4:])
		if n == 0 || n > maxFrame || int(n) > len(data)-frameHeader {
			j.stats.Torn++
			return
		}
		payload := data[frameHeader : frameHeader+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			j.stats.Torn++
			return
		}
		data = data[frameHeader+int(n):]
		switch payload[0] {
		case 'A':
			if len(payload) < 1+8+2 {
				j.stats.Torn++
				return
			}
			id := binary.LittleEndian.Uint64(payload[1:])
			ml := int(binary.LittleEndian.Uint16(payload[9:]))
			if len(payload) < 11+ml {
				j.stats.Torn++
				return
			}
			meta := string(payload[11 : 11+ml])
			rec, err := dec.Unmarshal(payload[11+ml:])
			if err != nil {
				// The frame passed its CRC, so this is a codec-session
				// break, which also ends the segment's readable prefix.
				j.stats.Torn++
				return
			}
			if id >= j.nextID {
				j.nextID = id + 1
			}
			if _, dup := byID[id]; !dup {
				byID[id] = Entry{ID: id, Meta: meta, Rec: rec}
				*order = append(*order, id)
				j.segs[si].unacked[id] = struct{}{}
				j.segOf[id] = si
			}
		case 'K':
			if len(payload) < 3 {
				j.stats.Torn++
				return
			}
			cnt := int(binary.LittleEndian.Uint16(payload[1:]))
			if len(payload) < 3+8*cnt {
				j.stats.Torn++
				return
			}
			for i := 0; i < cnt; i++ {
				acked[binary.LittleEndian.Uint64(payload[3+8*i:])] = struct{}{}
			}
		default:
			j.stats.Torn++
			return
		}
	}
}

// segIndex parses seg-NNNNNN.wal.
func segIndex(name string) (int, bool) {
	var n int
	if _, err := fmt.Sscanf(name, segPrefix+"%06d.wal", &n); err != nil {
		return 0, false
	}
	return n, true
}

// Recovered returns the entries accepted in earlier sessions and never
// acked, in accept order, deduplicated by delivery id. The records are
// owned by the caller; the slice is shared (do not mutate).
func (j *Journal) Recovered() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// NextID returns the delivery id the next Append will assign.
func (j *Journal) NextID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextID
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := j.stats
	s.Segments = len(j.segs)
	s.Unacked = len(j.segOf)
	return s
}

// Marshalable reports whether r can be journaled (its field values are
// wire scalars or covered by the configured extension codec).
func (j *Journal) Marshalable(r *record.Record) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Marshalable(r)
}

// Append journals one accepted record under a fresh delivery id and
// returns the id. meta is an opaque caller tag stored with the record
// (recovered entries carry it back). The record stays the caller's.
func (j *Journal) Append(meta string, r *record.Record) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return 0, err
	}
	if len(meta) > 0xffff {
		return 0, fmt.Errorf("journal: meta too long (%d bytes)", len(meta))
	}
	rec, err := j.enc.Marshal(r)
	if err != nil {
		// The codec session may have committed label state the failed
		// frame never wrote; reseal the segment so disk and session agree.
		if rerr := j.rotate(); rerr != nil {
			j.failed = rerr
		}
		return 0, fmt.Errorf("journal: marshal record: %w", err)
	}
	// The id is consumed even when the write fails: a torn frame may still
	// replay, and reusing its id for a later record would collide with it.
	id := j.nextID
	j.nextID++
	p := append(j.buf[:0], make([]byte, frameHeader)...)
	p = append(p, 'A')
	p = binary.LittleEndian.AppendUint64(p, id)
	p = binary.LittleEndian.AppendUint16(p, uint16(len(meta)))
	p = append(p, meta...)
	p = append(p, rec...)
	if err := j.writeFrame(p); err != nil {
		return 0, err
	}
	j.stats.Appends++
	si := len(j.segs) - 1
	j.segs[si].unacked[id] = struct{}{}
	j.segOf[id] = si
	if j.curSize >= j.cfg.SegmentBytes {
		if err := j.rotate(); err != nil {
			j.failed = err
		}
	}
	return id, nil
}

// Ack journals the completion of the given delivery ids and truncates any
// sealed segment left fully acked. Unknown ids are recorded harmlessly
// (replay ignores acks with no matching accept).
func (j *Journal) Ack(ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.usable(); err != nil {
		return err
	}
	for len(ids) > 0 {
		n := len(ids)
		if n > 0xffff {
			n = 0xffff
		}
		p := append(j.buf[:0], make([]byte, frameHeader)...)
		p = append(p, 'K')
		p = binary.LittleEndian.AppendUint16(p, uint16(n))
		for _, id := range ids[:n] {
			p = binary.LittleEndian.AppendUint64(p, id)
		}
		if err := j.writeFrame(p); err != nil {
			return err
		}
		j.stats.Acks += n
		for _, id := range ids[:n] {
			if si, ok := j.segOf[id]; ok {
				delete(j.segs[si].unacked, id)
				delete(j.segOf, id)
			}
		}
		ids = ids[n:]
	}
	j.truncate()
	return nil
}

// writeFrame appends one length-prefixed CRC'd frame and applies the fsync
// policy. frame is the whole frame with frameHeader bytes reserved (and
// overwritten here) ahead of the payload; it aliases j.buf, which is
// reclaimed for the next frame. Callers hold mu. A failed or short write
// leaves an unreadable tail, so the segment is resealed (rotate) to keep
// later frames readable; if that fails too the journal is marked failed.
func (j *Journal) writeFrame(frame []byte) error {
	payload := frame[frameHeader:]
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	j.buf = frame[:0] // reclaim the scratch for the next frame
	n, err := j.cur.Write(frame)
	j.curSize += n
	if err == nil && n < len(frame) {
		err = fmt.Errorf("journal: short write (%d of %d bytes)", n, len(frame))
	}
	if err != nil {
		if rerr := j.rotate(); rerr != nil {
			j.failed = rerr
		}
		return err
	}
	switch j.cfg.Fsync {
	case FsyncAlways:
		return j.cur.Sync()
	case FsyncBatch:
		if now := j.cfg.Clock.Now(); now.Sub(j.lastSync) >= j.cfg.FsyncInterval {
			j.lastSync = now
			return j.cur.Sync()
		}
	}
	return nil
}

// rotate seals the current segment and opens the next one with a fresh
// codec session. Callers hold mu.
func (j *Journal) rotate() error {
	if j.cur != nil {
		j.cur.Sync()
		j.cur.Close()
		j.cur = nil
		j.truncate()
	}
	name := fmt.Sprintf(segPrefix+"%06d.wal", j.nextSeg)
	f, err := j.fs.OpenAppend(name)
	if err != nil {
		return fmt.Errorf("journal: open segment %s: %w", name, err)
	}
	j.nextSeg++
	j.cur = f
	j.curSize = 0
	j.segs = append(j.segs, segState{name: name, unacked: map[uint64]struct{}{}})
	j.enc = dist.NewCodec()
	if j.cfg.Ext != nil {
		j.enc.SetValueCodec(j.cfg.Ext)
	}
	return nil
}

// truncate removes leading sealed segments whose accepts are all acked.
// Callers hold mu. Removing a segment invalidates the segOf indices, so
// surviving segments are reindexed.
func (j *Journal) truncate() {
	sealed := len(j.segs)
	if j.cur != nil {
		sealed-- // the open segment is never truncated
	}
	drop := 0
	for drop < sealed && len(j.segs[drop].unacked) == 0 {
		if err := j.fs.Remove(j.segs[drop].name); err != nil {
			break
		}
		drop++
	}
	if drop == 0 {
		return
	}
	j.segs = append(j.segs[:0], j.segs[drop:]...)
	for id, si := range j.segOf {
		j.segOf[id] = si - drop
	}
}

// usable reports the sticky failure state. Callers hold mu.
func (j *Journal) usable() error {
	if j.closed {
		return fmt.Errorf("journal: closed")
	}
	return j.failed
}

// Sync forces appended frames to stable storage regardless of policy.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.cur == nil {
		return nil
	}
	return j.cur.Sync()
}

// Close syncs and closes the journal. Further Appends and Acks fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.cur == nil {
		return nil
	}
	serr := j.cur.Sync()
	cerr := j.cur.Close()
	j.cur = nil
	if serr != nil {
		return serr
	}
	return cerr
}
