package journal

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FS is the journal's filesystem seam: everything the segmented log does to
// disk goes through it, so recovery paths — short writes, torn frames,
// failing fsyncs — are testable deterministically (internal/faultfs wraps
// any FS with an injected fault schedule, the disk sibling of
// internal/faultwire). Names are segment file names relative to the
// journal's directory; implementations own the rooting.
type FS interface {
	// OpenAppend opens name for appending, creating it (and the root
	// directory) if needed.
	OpenAppend(name string) (File, error)
	// ReadFile returns the full contents of name.
	ReadFile(name string) ([]byte, error)
	// Remove deletes name (used by segment truncation).
	Remove(name string) error
	// List returns the existing file names in lexical order; a root that
	// does not exist yet lists empty, not an error.
	List() ([]string, error)
}

// File is an append-target segment file.
type File interface {
	Write(p []byte) (int, error)
	// Sync flushes written data to stable storage (the fsync-policy hook).
	Sync() error
	Close() error
}

// DirFS returns the real-disk FS rooted at dir. The directory is created
// lazily on the first OpenAppend.
func DirFS(dir string) FS { return dirFS{dir: dir} }

type dirFS struct{ dir string }

func (d dirFS) OpenAppend(name string) (File, error) {
	if err := os.MkdirAll(d.dir, 0o755); err != nil {
		return nil, err
	}
	return os.OpenFile(filepath.Join(d.dir, name), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

func (d dirFS) ReadFile(name string) ([]byte, error) {
	return os.ReadFile(filepath.Join(d.dir, name))
}

func (d dirFS) Remove(name string) error {
	return os.Remove(filepath.Join(d.dir, name))
}

func (d dirFS) List() ([]string, error) {
	ents, err := os.ReadDir(d.dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasPrefix(e.Name(), segPrefix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}
