package sched

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlockEven(t *testing.T) {
	spans := Block(3000, 8)
	if len(spans) != 8 {
		t.Fatalf("got %d spans", len(spans))
	}
	if err := Validate(spans, 3000); err != nil {
		t.Fatal(err)
	}
	for _, s := range spans {
		if s.Rows() != 375 {
			t.Fatalf("span %s not even", s)
		}
	}
}

func TestBlockUneven(t *testing.T) {
	spans := Block(10, 3)
	if err := Validate(spans, 10); err != nil {
		t.Fatal(err)
	}
	for _, s := range spans {
		if s.Rows() < 3 || s.Rows() > 4 {
			t.Fatalf("span %s size out of range", s)
		}
	}
}

func TestBlockDegenerate(t *testing.T) {
	if Block(10, 0) != nil {
		t.Fatal("Block with 0 parts should be nil")
	}
	spans := Block(2, 4) // more parts than rows: some spans empty
	if err := Validate(spans, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFactoringPaperExample(t *testing.T) {
	// "suppose a scene of 3000×3000 pixels is split along the y axis by
	// dividing it into 48 sections ... two batches with the first batch
	// containing 24 sections of size 93 and the second batch the
	// remaining 24 sections of size 32."
	spans, err := PaperFactoring(3000, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 48 {
		t.Fatalf("got %d spans", len(spans))
	}
	if err := Validate(spans, 3000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		if spans[i].Rows() != 93 {
			t.Fatalf("batch-1 span %d = %d rows, want 93", i, spans[i].Rows())
		}
	}
	for i := 24; i < 48; i++ {
		if spans[i].Rows() != 32 {
			t.Fatalf("batch-2 span %d = %d rows, want 32", i, spans[i].Rows())
		}
	}
}

func TestFactoringSizesDecrease(t *testing.T) {
	spans, err := Factoring(1000, 20, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(spans, 1000); err != nil {
		t.Fatal(err)
	}
	// batch sizes must be non-increasing
	per := 5
	for b := 0; b < 3; b++ {
		if spans[b*per].Rows() < spans[(b+1)*per].Rows() {
			t.Fatalf("batch %d smaller than batch %d", b, b+1)
		}
	}
}

func TestFactoringErrors(t *testing.T) {
	if _, err := Factoring(100, 7, 3, 2); err == nil {
		t.Fatal("non-divisible tasks should error")
	}
	if _, err := Factoring(0, 8, 3, 2); err == nil {
		t.Fatal("zero total should error")
	}
	if _, err := Factoring(100, 8, 0, 2); err == nil {
		t.Fatal("zero factor should error")
	}
	if _, err := Factoring(100, 8, 3, 0); err == nil {
		t.Fatal("zero batches should error")
	}
	if _, err := Factoring(2, 64, 3, 2); err == nil {
		t.Fatal("degenerate total should error")
	}
}

func TestValidateCatchesGaps(t *testing.T) {
	if err := Validate([]Span{{0, 5}, {6, 10}}, 10); err == nil {
		t.Fatal("gap not caught")
	}
	if err := Validate([]Span{{0, 5}, {5, 9}}, 10); err == nil {
		t.Fatal("short coverage not caught")
	}
	if err := Validate([]Span{{0, 5}, {5, 3}}, 3); err == nil {
		t.Fatal("inverted span not caught")
	}
}

func TestSpanString(t *testing.T) {
	if (Span{2, 5}).String() != "[2,5)" {
		t.Fatal("Span.String")
	}
}

func TestPropBlockAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := rng.Intn(5000)
		parts := 1 + rng.Intn(100)
		return Validate(Block(total, parts), total) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropFactoringValidWhenAccepted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := 100 + rng.Intn(5000)
		batches := 1 + rng.Intn(4)
		perBatch := 1 + rng.Intn(12)
		tasks := batches * perBatch
		factor := 1 + rng.Intn(4)
		spans, err := Factoring(total, tasks, factor, batches)
		if err != nil {
			return true // rejected inputs are fine
		}
		if Validate(spans, total) != nil {
			return false
		}
		// batch sizes non-increasing
		for b := 0; b+1 < batches; b++ {
			if spans[b*perBatch].Rows() < spans[(b+1)*perBatch].Rows() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
