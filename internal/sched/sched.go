// Package sched implements the paper's work-distribution policies for
// splitting an image of H rows into sections: block scheduling (equal
// contiguous sections) and the "simple variant of factoring" (Hummel,
// Schonberg, Flynn 1992) described in Section V, where the problem is
// divided into batches of equally sized sections whose size decreases from
// batch to batch by a fixed factor.
package sched

import "fmt"

// Span is a half-open row range [Lo, Hi).
type Span struct {
	Lo, Hi int
}

// Rows returns the span length.
func (s Span) Rows() int { return s.Hi - s.Lo }

// String renders the span.
func (s Span) String() string { return fmt.Sprintf("[%d,%d)", s.Lo, s.Hi) }

// Block divides total rows into `parts` contiguous, maximally even
// sections — the paper's block scheduling. Sizes differ by at most one row.
func Block(total, parts int) []Span {
	if parts <= 0 || total < 0 {
		return nil
	}
	spans := make([]Span, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * total / parts
		hi := (i + 1) * total / parts
		spans = append(spans, Span{Lo: lo, Hi: hi})
	}
	return spans
}

// Factoring divides total rows into `batches` batches of tasks/batches
// sections each; all sections within a batch have the same size and the
// size shrinks by `factor` from each batch to the next. The paper's
// example: 3000 rows, 48 tasks, factor 3, 2 batches gives 24 sections of
// 93 rows followed by 24 sections of 32 rows.
//
// tasks must be divisible by batches; rounding remainders are absorbed by
// the first batch so the spans always cover total exactly.
func Factoring(total, tasks, factor, batches int) ([]Span, error) {
	if tasks <= 0 || total <= 0 {
		return nil, fmt.Errorf("sched: factoring needs positive total and tasks")
	}
	if batches <= 0 || factor <= 0 {
		return nil, fmt.Errorf("sched: factoring needs positive factor and batches")
	}
	if tasks%batches != 0 {
		return nil, fmt.Errorf("sched: %d tasks not divisible into %d batches", tasks, batches)
	}
	perBatch := tasks / batches
	// Geometric weights: batch b (0-based) has relative size factor^(B-1-b).
	weights := make([]int, batches)
	sum := 0
	w := 1
	for b := batches - 1; b >= 0; b-- {
		weights[b] = w
		sum += w
		w *= factor
	}
	// Last batch's section size, rounded up (as in the paper's 31.25→32),
	// with the first batch absorbing the remainder. When rounding up
	// over-assigns or would make the first batch smaller than the second
	// (possible for factor 1), fall back to rounding down, which provably
	// keeps batch sizes non-increasing.
	sizes := make([]int, batches)
	var remaining int
	for _, unit := range []int{
		(total + perBatch*sum - 1) / (perBatch * sum), // ceil
		total / (perBatch * sum),                      // floor
	} {
		if unit == 0 {
			continue
		}
		assigned := 0
		for b := batches - 1; b >= 1; b-- {
			sizes[b] = unit * weights[b]
			assigned += sizes[b] * perBatch
		}
		remaining = total - assigned
		if remaining > 0 && (batches == 1 || remaining/perBatch >= sizes[1]) {
			break
		}
		remaining = 0
	}
	if remaining <= 0 {
		return nil, fmt.Errorf("sched: factoring degenerate (total %d too small for %d tasks)", total, tasks)
	}
	sizes[0] = remaining / perBatch
	extra := remaining - sizes[0]*perBatch // rows left over after even split

	spans := make([]Span, 0, tasks)
	lo := 0
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			size := sizes[b]
			if b == 0 && i < extra {
				size++
			}
			spans = append(spans, Span{Lo: lo, Hi: lo + size})
			lo += size
		}
	}
	if lo != total {
		return nil, fmt.Errorf("sched: internal error, covered %d of %d rows", lo, total)
	}
	return spans, nil
}

// PaperFactoring applies the parameters of the paper's worked example:
// factor 3, two batches.
func PaperFactoring(total, tasks int) ([]Span, error) {
	return Factoring(total, tasks, 3, 2)
}

// Validate checks that spans are contiguous, non-empty (except possibly
// when parts exceed rows) and cover [0, total) exactly.
func Validate(spans []Span, total int) error {
	lo := 0
	for i, s := range spans {
		if s.Lo != lo {
			return fmt.Errorf("sched: span %d starts at %d, want %d", i, s.Lo, lo)
		}
		if s.Hi < s.Lo {
			return fmt.Errorf("sched: span %d inverted: %s", i, s)
		}
		lo = s.Hi
	}
	if lo != total {
		return fmt.Errorf("sched: spans cover %d of %d rows", lo, total)
	}
	return nil
}
